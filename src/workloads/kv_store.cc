#include "workloads/kv_store.h"

#include <cstring>

#include "common/logging.h"

namespace freeflow::workloads {

// ------------------------------------------------------------ RecordStream

RecordStream::RecordStream(StreamPtr stream, RecordFn on_record)
    : stream_(std::move(stream)), accum_(std::make_shared<Buffer>()) {
  stream_->set_on_data([accum = accum_, cb = std::move(on_record)](Buffer&& chunk) {
    accum->append(chunk.view());
    std::size_t cursor = 0;
    while (accum->size() - cursor >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, accum->data() + cursor, 4);
      if (accum->size() - cursor - 4 < len) break;
      cb(ByteSpan{accum->data() + cursor + 4, len});
      cursor += 4 + len;
    }
    if (cursor > 0) {
      Buffer rest(accum->data() + cursor, accum->size() - cursor);
      *accum = std::move(rest);
    }
  });
}

Status RecordStream::send_record(ByteSpan record) {
  Buffer framed(4 + record.size());
  const auto len = static_cast<std::uint32_t>(record.size());
  std::memcpy(framed.data(), &len, 4);
  if (!record.empty()) {  // empty spans may carry a null data()
    std::memcpy(framed.data() + 4, record.data(), record.size());
  }
  return stream_->send(std::move(framed));
}

// ---------------------------------------------------------------- KvServer

namespace {
constexpr std::size_t k_req_header = 1 + 8 + 2 + 4;
constexpr std::size_t k_resp_header = 1 + 8 + 4;
}  // namespace

void KvServer::serve(StreamPtr stream) {
  // The RecordStream is owned by the on_data closure chain.
  auto rs = std::make_shared<std::unique_ptr<RecordStream>>();
  *rs = std::make_unique<RecordStream>(stream, [this, stream, rs](ByteSpan record) {
    (void)rs;  // keep the parser alive as long as the stream feeds it
    handle_record(stream, record);
  });
}

void KvServer::handle_record(const StreamPtr& stream, ByteSpan record) {
  if (record.size() < k_req_header) return;
  const auto op = static_cast<KvOp>(record[0]);
  std::uint64_t req_id = 0;
  std::uint16_t klen = 0;
  std::uint32_t vlen = 0;
  std::memcpy(&req_id, record.data() + 1, 8);
  std::memcpy(&klen, record.data() + 9, 2);
  std::memcpy(&vlen, record.data() + 11, 4);
  if (record.size() < k_req_header + klen + (op == KvOp::put ? vlen : 0)) return;

  std::string key(reinterpret_cast<const char*>(record.data() + k_req_header), klen);
  ++served_;

  KvStatus status = KvStatus::ok;
  const Buffer* value = nullptr;
  if (op == KvOp::put) {
    (*store_)[key] = Buffer(record.data() + k_req_header + klen, vlen);
  } else {
    auto it = store_->find(key);
    if (it == store_->end()) {
      status = KvStatus::not_found;
    } else {
      value = &it->second;
    }
  }

  const std::uint32_t out_vlen =
      (op == KvOp::get && value != nullptr) ? static_cast<std::uint32_t>(value->size()) : 0;
  Buffer resp(4 + k_resp_header + out_vlen);
  const auto total = static_cast<std::uint32_t>(k_resp_header + out_vlen);
  std::memcpy(resp.data(), &total, 4);
  resp.data()[4] = static_cast<std::byte>(status);
  std::memcpy(resp.data() + 5, &req_id, 8);
  std::memcpy(resp.data() + 13, &out_vlen, 4);
  if (out_vlen != 0) std::memcpy(resp.data() + 17, value->data(), out_vlen);
  (void)stream->send(std::move(resp));
}

// ---------------------------------------------------------------- KvClient

KvClient::KvClient(StreamPtr stream) : stream_(std::move(stream)) {
  auto accum = std::make_shared<Buffer>();
  stream_->set_on_data([this, accum](Buffer&& chunk) {
    accum->append(chunk.view());
    std::size_t cursor = 0;
    while (accum->size() - cursor >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, accum->data() + cursor, 4);
      if (accum->size() - cursor - 4 < len) break;
      handle_record(ByteSpan{accum->data() + cursor + 4, len});
      cursor += 4 + len;
    }
    if (cursor > 0) {
      Buffer rest(accum->data() + cursor, accum->size() - cursor);
      *accum = std::move(rest);
    }
  });
}

void KvClient::get(std::string key, GetFn cb) {
  const std::uint64_t id = next_req_++;
  Pending p;
  p.on_get = std::move(cb);
  p.started = now_ ? now_() : 0;
  pending_.emplace(id, std::move(p));

  const auto klen = static_cast<std::uint16_t>(key.size());
  Buffer req(4 + k_req_header + key.size());
  const auto total = static_cast<std::uint32_t>(k_req_header + key.size());
  std::memcpy(req.data(), &total, 4);
  req.data()[4] = static_cast<std::byte>(KvOp::get);
  std::memcpy(req.data() + 5, &id, 8);
  std::memcpy(req.data() + 13, &klen, 2);
  const std::uint32_t vlen = 0;
  std::memcpy(req.data() + 15, &vlen, 4);
  std::memcpy(req.data() + 19, key.data(), key.size());
  (void)stream_->send(std::move(req));
}

void KvClient::put(std::string key, Buffer value, PutFn cb) {
  const std::uint64_t id = next_req_++;
  Pending p;
  p.on_put = std::move(cb);
  p.started = now_ ? now_() : 0;
  pending_.emplace(id, std::move(p));

  const auto klen = static_cast<std::uint16_t>(key.size());
  const auto vlen = static_cast<std::uint32_t>(value.size());
  Buffer req(4 + k_req_header + key.size() + value.size());
  const auto total = static_cast<std::uint32_t>(k_req_header + key.size() + value.size());
  std::memcpy(req.data(), &total, 4);
  req.data()[4] = static_cast<std::byte>(KvOp::put);
  std::memcpy(req.data() + 5, &id, 8);
  std::memcpy(req.data() + 13, &klen, 2);
  std::memcpy(req.data() + 15, &vlen, 4);
  std::memcpy(req.data() + 19, key.data(), key.size());
  if (!value.empty()) {  // empty spans may carry a null data()
    std::memcpy(req.data() + 19 + key.size(), value.data(), value.size());
  }
  (void)stream_->send(std::move(req));
}

void KvClient::handle_record(ByteSpan record) {
  if (record.size() < k_resp_header) return;
  const auto status = static_cast<KvStatus>(record[0]);
  std::uint64_t req_id = 0;
  std::uint32_t vlen = 0;
  std::memcpy(&req_id, record.data() + 1, 8);
  std::memcpy(&vlen, record.data() + 9, 4);

  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  ++completed_;
  if (now_) latency_.record(now_() - p.started);
  if (p.on_get) {
    p.on_get(status, Buffer(record.data() + k_resp_header, vlen));
  } else if (p.on_put) {
    p.on_put(status);
  }
}

}  // namespace freeflow::workloads
