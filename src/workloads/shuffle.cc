#include "workloads/shuffle.h"

#include <algorithm>

#include "common/logging.h"

namespace freeflow::workloads {

void Shuffle::run(std::function<SimTime()> now,
                  std::function<void(Result<SimDuration>)> done) {
  now_ = std::move(now);
  done_ = std::move(done);
  started_ = now_();
  for (int m = 0; m < config_.mappers; ++m) {
    for (int r = 0; r < config_.reducers; ++r) {
      connect_(m, r, [this](Result<StreamPtr> stream) {
        if (!stream.is_ok()) {
          // One lost flow means the byte budget can never be met: fail the
          // whole shuffle now instead of hanging until the caller times out.
          FF_LOG(warn, "shuffle") << "flow setup failed: " << stream.status();
          if (!finished_ && done_) {
            finished_ = true;
            done_(stream.status());
          }
          return;
        }
        pump_flow(*stream, std::make_shared<std::uint64_t>(0));
      });
    }
  }
}

void Shuffle::pump_flow(const StreamPtr& stream, std::shared_ptr<std::uint64_t> sent) {
  // Drive the flow until done; kernel-TCP backpressure (would_block) pauses
  // the loop and on_writable resumes it.
  // The closure must not capture `pump` itself: the resume path owns it via
  // on_writable, and a self-capture would be an unbreakable cycle pinning
  // stream -> socket -> conduit.
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, stream, sent]() {
    while (*sent < config_.bytes_per_flow) {
      const std::uint64_t n =
          std::min<std::uint64_t>(config_.chunk_bytes, config_.bytes_per_flow - *sent);
      Buffer chunk(static_cast<std::size_t>(n));
      fill_pattern(chunk.mutable_view(), *sent);
      if (!stream->send(std::move(chunk)).is_ok()) return;  // resume on writable
      *sent += n;
    }
  };
  stream->set_on_writable([pump]() { (*pump)(); });
  (*pump)();
}

std::function<void(StreamPtr)> Shuffle::reducer_sink() {
  return [this](StreamPtr stream) {
    // The callback retains the stream: accepted sockets are app-owned.
    stream->set_on_data([this, stream](Buffer&& chunk) { account(chunk.size()); });
  };
}

void Shuffle::account(std::uint64_t bytes) {
  received_ += bytes;
  if (!finished_ && received_ >= bytes_expected_total()) {
    finished_ = true;
    if (done_) done_(now_() - started_);
  }
}

}  // namespace freeflow::workloads
