// Adapters are header-only; this TU anchors the library target.
#include "workloads/stream_adapter.h"
