// Per-host overlay software router. Forwards container traffic between the
// local bridge and remote routers (VXLAN-encapsulated over the host
// network), and exchanges routes BGP-style: every /32 a host gains is
// announced to all peer routers over the fabric's control plane, with real
// propagation latency — connections attempted before convergence fail.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/host.h"
#include "sim/resource.h"
#include "tcpstack/ip.h"
#include "tcpstack/routing.h"

namespace freeflow::overlay {

class OverlayNetwork;

class Router {
 public:
  Router(OverlayNetwork& net, fabric::Host& host);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] fabric::Host& host() noexcept { return host_; }
  [[nodiscard]] sim::UsageAccount& account() noexcept { return account_; }
  /// The router is a single userspace process: all forwarding serializes
  /// through this one thread (a key reason overlays are slow).
  [[nodiscard]] std::shared_ptr<sim::SerialExecutor> thread() noexcept { return thread_; }

  /// Route lookup (longest-prefix match) over learned routes.
  [[nodiscard]] std::optional<fabric::HostId> route(tcp::Ipv4Addr dst) const {
    return table_.lookup(dst);
  }

  /// Announces `subnet`->this-host to every peer router (and installs it
  /// locally at once).
  void announce(const tcp::Subnet& subnet);

  /// Withdraws a subnet everywhere (container stopped / migrating away).
  void withdraw(const tcp::Subnet& subnet);

  /// Called on announcement arrival from a peer.
  void learn(const tcp::Subnet& subnet, fabric::HostId origin) {
    table_.add_route(subnet, origin);
  }
  /// Called on withdrawal arrival from a peer. Origin-qualified: if a newer
  /// announcement (e.g. the destination of a live migration) already moved
  /// the route, the stale withdrawal is a no-op instead of clobbering it.
  void unlearn(const tcp::Subnet& subnet, fabric::HostId origin) {
    table_.remove_route(subnet, origin);
  }

  [[nodiscard]] std::size_t route_count() const noexcept { return table_.size(); }

 private:
  OverlayNetwork& net_;
  fabric::Host& host_;
  sim::UsageAccount account_;
  std::shared_ptr<sim::SerialExecutor> thread_;
  tcp::RoutingTable<fabric::HostId> table_;
};

}  // namespace freeflow::overlay
