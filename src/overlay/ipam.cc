#include "overlay/ipam.h"

namespace freeflow::overlay {

Ipam::Ipam(tcp::Subnet pool) : pool_(pool) {
  FF_CHECK(pool.prefix_len >= 1 && pool.prefix_len <= 30);
  const std::uint32_t mask = ~std::uint32_t{0} << (32 - pool.prefix_len);
  const std::uint32_t base = pool.base.value() & mask;
  pool_.base = tcp::Ipv4Addr(base);
  first_ = base + 1;
  last_ = base + (~mask) - 1;
  cursor_ = first_;
}

std::size_t Ipam::capacity() const noexcept { return last_ - first_ + 1; }

Result<tcp::Ipv4Addr> Ipam::allocate(std::optional<tcp::Ipv4Addr> want) {
  if (want.has_value()) {
    const std::uint32_t v = want->value();
    if (v < first_ || v > last_) {
      return invalid_argument("requested IP " + want->to_string() + " outside pool " +
                              pool_.to_string());
    }
    if (used_.contains(v)) {
      return already_exists("IP " + want->to_string() + " already allocated");
    }
    used_.insert(v);
    return *want;
  }
  if (used_.size() >= capacity()) return resource_exhausted("IPAM pool exhausted");
  // Scan from the cursor with wrap-around; amortized O(1).
  for (std::uint32_t tries = 0; tries <= last_ - first_; ++tries) {
    const std::uint32_t candidate = cursor_;
    cursor_ = cursor_ == last_ ? first_ : cursor_ + 1;
    if (!used_.contains(candidate)) {
      used_.insert(candidate);
      return tcp::Ipv4Addr(candidate);
    }
  }
  return resource_exhausted("IPAM pool exhausted");
}

Status Ipam::release(tcp::Ipv4Addr addr) {
  if (used_.erase(addr.value()) == 0) {
    return not_found("IP " + addr.to_string() + " not allocated");
  }
  return ok_status();
}

}  // namespace freeflow::overlay
