// The overlay network: the portability baseline FreeFlow competes with
// (docker overlay / Weave-style). Containers get location-independent IPs
// from a cluster-wide IPAM; per-host software routers forward traffic and
// exchange routes. Its data path — veth/bridge into a userspace router,
// VXLAN encap, and the same again on the receiver — is what makes it the
// slowest mode in the paper's Figure 1.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fabric/cluster.h"
#include "overlay/ipam.h"
#include "overlay/router.h"
#include "tcpstack/modes.h"
#include "tcpstack/network.h"

namespace freeflow::overlay {

/// Builds overlay-mode TCP paths: bridge hop, router hop (+VXLAN when
/// inter-host), wire, and the mirror image on the receiving host.
class OverlayModeBuilder final : public tcp::PathBuilder {
 public:
  explicit OverlayModeBuilder(OverlayNetwork& net) : net_(net) {}
  Result<tcp::PathPair> build(const tcp::Endpoint& src, const tcp::Endpoint& dst) override;

 private:
  OverlayNetwork& net_;
};

class OverlayNetwork {
 public:
  OverlayNetwork(fabric::Cluster& cluster, tcp::Subnet pool);

  OverlayNetwork(const OverlayNetwork&) = delete;
  OverlayNetwork& operator=(const OverlayNetwork&) = delete;

  /// Creates the software router on `host` (idempotent per host).
  Router& attach_host(fabric::HostId host);

  /// Allocates an overlay IP for a container on `host` and announces it.
  Result<tcp::Ipv4Addr> add_container(fabric::HostId host, sim::UsageAccount* account,
                                      std::optional<tcp::Ipv4Addr> want = std::nullopt);

  /// Live migration support: withdraw from the old host, announce from the
  /// new one; the IP is preserved (the paper's key portability property).
  Status move_container(tcp::Ipv4Addr ip, fabric::HostId new_host,
                        sim::UsageAccount* account);

  Status remove_container(tcp::Ipv4Addr ip);

  [[nodiscard]] Router* router(fabric::HostId host);
  [[nodiscard]] const std::vector<Router*>& routers() const noexcept { return router_list_; }
  [[nodiscard]] fabric::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] Ipam& ipam() noexcept { return ipam_; }
  [[nodiscard]] OverlayModeBuilder& path_builder() noexcept { return builder_; }

  /// Where a container IP is bound (for path construction/accounts).
  struct Binding {
    fabric::HostId host;
    sim::UsageAccount* account;
    /// Serializes this container's stack processing (one app thread).
    std::shared_ptr<sim::SerialExecutor> thread;
  };
  [[nodiscard]] Result<Binding> binding(tcp::Ipv4Addr ip) const;

 private:
  friend class OverlayModeBuilder;

  fabric::Cluster& cluster_;
  Ipam ipam_;
  OverlayModeBuilder builder_;
  std::unordered_map<fabric::HostId, std::unique_ptr<Router>> routers_;
  std::vector<Router*> router_list_;
  std::unordered_map<std::uint32_t, Binding> bindings_;
};

}  // namespace freeflow::overlay
