#include "overlay/router.h"

#include "fabric/control.h"
#include "overlay/overlay.h"

namespace freeflow::overlay {

namespace {
constexpr std::uint32_t k_announce_wire_bytes = 96;  // BGP UPDATE-ish
}

Router::Router(OverlayNetwork& net, fabric::Host& host)
    : net_(net),
      host_(host),
      account_("router@" + host.name()),
      thread_(std::make_shared<sim::SerialExecutor>(host.cpu())) {}

void Router::announce(const tcp::Subnet& subnet) {
  table_.add_route(subnet, host_.id());
  for (Router* peer : net_.routers()) {
    if (peer == this) continue;
    fabric::send_control(host_, peer->host().id(), k_announce_wire_bytes,
                         [peer, subnet, origin = host_.id()]() {
                           peer->learn(subnet, origin);
                         });
  }
}

void Router::withdraw(const tcp::Subnet& subnet) {
  table_.remove_route(subnet, host_.id());
  for (Router* peer : net_.routers()) {
    if (peer == this) continue;
    fabric::send_control(host_, peer->host().id(), k_announce_wire_bytes,
                         [peer, subnet, origin = host_.id()]() {
                           peer->unlearn(subnet, origin);
                         });
  }
}

}  // namespace freeflow::overlay
