// IP address management for the overlay: allocates container IPs out of a
// cluster-wide pool. FreeFlow keeps this control-plane feature unchanged
// from existing overlays ("IP assignment independent of container
// location"), so IPs never encode placement.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "common/status.h"
#include "tcpstack/ip.h"

namespace freeflow::overlay {

class Ipam {
 public:
  /// `pool` e.g. 10.244.0.0/16; network (.0) and broadcast-ish last address
  /// are never handed out.
  explicit Ipam(tcp::Subnet pool);

  /// Allocates the lowest free address, or `want` if given and free.
  Result<tcp::Ipv4Addr> allocate(std::optional<tcp::Ipv4Addr> want = std::nullopt);

  Status release(tcp::Ipv4Addr addr);

  [[nodiscard]] bool in_use(tcp::Ipv4Addr addr) const noexcept {
    return used_.contains(addr.value());
  }
  [[nodiscard]] std::size_t allocated() const noexcept { return used_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept;
  [[nodiscard]] const tcp::Subnet& pool() const noexcept { return pool_; }

 private:
  tcp::Subnet pool_;
  std::uint32_t first_;
  std::uint32_t last_;
  std::uint32_t cursor_;
  std::unordered_set<std::uint32_t> used_;
};

}  // namespace freeflow::overlay
