#include "overlay/overlay.h"

#include "fabric/control.h"

namespace freeflow::overlay {

OverlayNetwork::OverlayNetwork(fabric::Cluster& cluster, tcp::Subnet pool)
    : cluster_(cluster), ipam_(pool), builder_(*this) {}

Router& OverlayNetwork::attach_host(fabric::HostId host) {
  auto it = routers_.find(host);
  if (it != routers_.end()) return *it->second;
  fabric::Host& h = cluster_.host(host);
  fabric::install_control_rx(h);
  tcp::WireHop::install_rx(h);
  auto router = std::make_unique<Router>(*this, h);
  Router& ref = *router;
  routers_.emplace(host, std::move(router));
  router_list_.push_back(&ref);
  return ref;
}

Result<tcp::Ipv4Addr> OverlayNetwork::add_container(fabric::HostId host,
                                                    sim::UsageAccount* account,
                                                    std::optional<tcp::Ipv4Addr> want) {
  Router* r = router(host);
  if (r == nullptr) return failed_precondition("host not attached to overlay");
  auto ip = ipam_.allocate(want);
  if (!ip.is_ok()) return ip.status();
  bindings_[ip->value()] = Binding{
      host, account, std::make_shared<sim::SerialExecutor>(cluster_.host(host).cpu())};
  r->announce(tcp::Subnet{*ip, 32});
  return ip;
}

Status OverlayNetwork::move_container(tcp::Ipv4Addr ip, fabric::HostId new_host,
                                      sim::UsageAccount* account) {
  auto it = bindings_.find(ip.value());
  if (it == bindings_.end()) return not_found("IP " + ip.to_string() + " not bound");
  Router* old_router = router(it->second.host);
  Router* new_router = router(new_host);
  if (new_router == nullptr) return failed_precondition("target host not attached");
  old_router->withdraw(tcp::Subnet{ip, 32});
  it->second = Binding{new_host, account,
                       std::make_shared<sim::SerialExecutor>(cluster_.host(new_host).cpu())};
  new_router->announce(tcp::Subnet{ip, 32});
  return ok_status();
}

Status OverlayNetwork::remove_container(tcp::Ipv4Addr ip) {
  auto it = bindings_.find(ip.value());
  if (it == bindings_.end()) return not_found("IP " + ip.to_string() + " not bound");
  if (Router* r = router(it->second.host)) r->withdraw(tcp::Subnet{ip, 32});
  bindings_.erase(it);
  return ipam_.release(ip);
}

Router* OverlayNetwork::router(fabric::HostId host) {
  auto it = routers_.find(host);
  return it == routers_.end() ? nullptr : it->second.get();
}

Result<OverlayNetwork::Binding> OverlayNetwork::binding(tcp::Ipv4Addr ip) const {
  auto it = bindings_.find(ip.value());
  if (it == bindings_.end()) return not_found("IP " + ip.to_string() + " not bound");
  return it->second;
}

Result<tcp::PathPair> OverlayModeBuilder::build(const tcp::Endpoint& src,
                                                const tcp::Endpoint& dst) {
  auto sb = net_.binding(src.ip);
  if (!sb.is_ok()) return sb.status();
  Router* src_router = net_.router(sb->host);
  if (src_router == nullptr) return failed_precondition("source host has no router");

  // Reachability comes from the *learned* routing table, so connections
  // attempted before route convergence fail — as they do in real overlays.
  auto via = src_router->route(dst.ip);
  if (!via.has_value()) {
    return unavailable("no overlay route to " + dst.ip.to_string() + " yet");
  }
  auto db = net_.binding(dst.ip);
  if (!db.is_ok()) return db.status();
  Router* dst_router = net_.router(*via);
  if (dst_router == nullptr) return failed_precondition("destination host has no router");

  fabric::Host& sh = net_.cluster().host(sb->host);
  fabric::Host& dh = net_.cluster().host(*via);
  const auto& m = net_.cluster().cost_model();
  const bool inter_host = sh.id() != dh.id();

  const tcp::EndpointBinding src_b{&sh, sb->account, sb->thread};
  const tcp::EndpointBinding dst_b{&dh, db->account, db->thread};

  tcp::PathPair paths;
  // Sender: container stack + veth/bridge into the router.
  paths.data.add(tcp::hops::tcp_tx(src_b, m));
  paths.data.add(tcp::hops::bridge(src_b, m));
  paths.control.add(tcp::hops::ack_cost(src_b, m.tcp_ack_ns + m.bridge_ack_ns));

  // Source router: a single userspace process doing two copies per chunk
  // (+ VXLAN encap when the packet leaves the host).
  const double encap = inter_host ? m.vxlan_ns_per_chunk : 0.0;
  paths.data.add(std::make_shared<tcp::CpuHop>(
      sh, src_router->thread(),
      [&m, encap](const tcp::Segment& s) { return m.router_cost(s.payload_bytes()) + encap; },
      &src_router->account()));
  paths.control.add(std::make_shared<tcp::CpuHop>(
      sh, src_router->thread(), [&m](const tcp::Segment&) { return m.router_ack_ns; },
      &src_router->account()));

  if (inter_host) {
    paths.data.add(tcp::hops::wire(sh, dh.id()));
    paths.control.add(tcp::hops::wire(sh, dh.id()));
    // Destination router: decap + forward onto the local bridge.
    paths.data.add(std::make_shared<tcp::CpuHop>(
        dh, dst_router->thread(),
        [&m](const tcp::Segment& s) {
          return m.router_cost(s.payload_bytes()) + m.vxlan_ns_per_chunk;
        },
        &dst_router->account()));
    paths.control.add(std::make_shared<tcp::CpuHop>(
        dh, dst_router->thread(), [&m](const tcp::Segment&) { return m.router_ack_ns; },
        &dst_router->account()));
  }

  // Receiver: bridge + stack + wakeup.
  paths.data.add(tcp::hops::bridge(dst_b, m));
  paths.data.add(tcp::hops::tcp_rx(dst_b, m));
  paths.data.add(tcp::hops::rx_wakeup(dh, m));
  paths.control.add(tcp::hops::ack_cost(dst_b, m.tcp_ack_ns + m.bridge_ack_ns));
  return paths;
}

}  // namespace freeflow::overlay
