#include "faults/fault_plan.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace freeflow::faults {

FaultPlan& FaultPlan::add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::link_flap(fabric::HostId host, SimTime at,
                                SimDuration down_for) {
  add({at, FaultKind::nic_link_down, host});
  add({at + down_for, FaultKind::nic_link_up, host});
  return *this;
}

FaultPlan& FaultPlan::rdma_outage(fabric::HostId host, SimTime at,
                                  SimDuration down_for) {
  add({at, FaultKind::rdma_down, host});
  add({at + down_for, FaultKind::rdma_up, host});
  return *this;
}

FaultPlan& FaultPlan::dpdk_outage(fabric::HostId host, SimTime at,
                                  SimDuration down_for) {
  add({at, FaultKind::dpdk_down, host});
  add({at + down_for, FaultKind::dpdk_up, host});
  return *this;
}

FaultPlan& FaultPlan::degrade(fabric::HostId host, SimTime at, double fraction,
                              SimDuration slow_for) {
  // The restore carries the same fraction so the injector can retire exactly
  // this degrade's contribution — overlapping degrades on one host each heal
  // independently instead of the last restore clobbering the rest.
  add({at, FaultKind::nic_degrade, host, fraction});
  add({at + slow_for, FaultKind::nic_restore, host, fraction});
  return *this;
}

FaultPlan& FaultPlan::host_crash(fabric::HostId host, SimTime at) {
  add({at, FaultKind::host_crash, host});
  return *this;
}

FaultPlan& FaultPlan::agent_pause(fabric::HostId host, SimTime at,
                                  SimDuration pause_for) {
  add({at, FaultKind::agent_pause, host});
  add({at + pause_for, FaultKind::agent_resume, host});
  return *this;
}

FaultPlan& FaultPlan::path_partition(fabric::HostId a, fabric::HostId b,
                                     SimTime at, SimDuration down_for) {
  add({at, FaultKind::path_partition, a, 1.0, b});
  add({at + down_for, FaultKind::path_heal, a, 1.0, b});
  return *this;
}

std::vector<FaultEvent> FaultPlan::events() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return sorted;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultEvent& event : events()) {
    char line[128];
    if (event.kind == FaultKind::nic_degrade) {
      std::snprintf(line, sizeof(line), "t=%" PRId64 " host=%u %s frac=%.3f\n",
                    event.at, event.host, fault_kind_name(event.kind),
                    event.fraction);
    } else if (event.kind == FaultKind::path_partition ||
               event.kind == FaultKind::path_heal) {
      std::snprintf(line, sizeof(line), "t=%" PRId64 " host=%u %s peer=%u\n",
                    event.at, event.host, fault_kind_name(event.kind),
                    event.peer);
    } else {
      std::snprintf(line, sizeof(line), "t=%" PRId64 " host=%u %s\n", event.at,
                    event.host, fault_kind_name(event.kind));
    }
    out += line;
  }
  return out;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t hosts, SimTime horizon,
                            std::size_t pairs) {
  FaultPlan plan;
  if (hosts == 0 || horizon <= 0) return plan;
  Rng rng(seed);
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto host = static_cast<fabric::HostId>(rng.next_below(hosts));
    // Fault onset in the first 80% of the horizon, heal within the rest (so
    // every random fault is observed both broken and recovered).
    const SimTime at = rng.uniform(0, horizon * 4 / 5);
    const SimDuration down_for = rng.uniform(horizon / 100 + 1, horizon / 5 + 1);
    switch (rng.next_below(4)) {
      case 0:
        plan.link_flap(host, at, down_for);
        break;
      case 1:
        plan.rdma_outage(host, at, down_for);
        break;
      case 2:
        plan.dpdk_outage(host, at, down_for);
        break;
      default:
        plan.degrade(host, at, 0.1 + 0.8 * rng.next_double(), down_for);
    }
  }
  return plan;
}

}  // namespace freeflow::faults
