// A FaultPlan is a deterministic script of infrastructure failures: which
// host, what breaks, when, and (for recoverable faults) when it heals.
// Plans are data — building one touches nothing; a FaultInjector executes
// it against the live cluster on the simulation clock. The same plan armed
// against the same seeded simulation must reproduce byte-identical traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "fabric/packet.h"

namespace freeflow::faults {

enum class FaultKind {
  nic_link_down,  ///< whole link dark: every packet kind drops
  nic_link_up,
  rdma_down,      ///< RDMA engine dead: rdma_chunk drops, kernel path lives
  rdma_up,
  dpdk_down,      ///< poll-mode path dead: dpdk_frame drops
  dpdk_up,
  nic_degrade,    ///< serialization slows to `fraction` of line rate
  nic_restore,
  host_crash,     ///< unrecoverable: link down + every container stopped
  agent_pause,    ///< agent process frozen (records buffer, no heartbeats)
  agent_resume,
  path_partition, ///< inter-host fabric path severed (both NICs healthy)
  path_heal,
};

[[nodiscard]] constexpr const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::nic_link_down: return "nic_link_down";
    case FaultKind::nic_link_up: return "nic_link_up";
    case FaultKind::rdma_down: return "rdma_down";
    case FaultKind::rdma_up: return "rdma_up";
    case FaultKind::dpdk_down: return "dpdk_down";
    case FaultKind::dpdk_up: return "dpdk_up";
    case FaultKind::nic_degrade: return "nic_degrade";
    case FaultKind::nic_restore: return "nic_restore";
    case FaultKind::host_crash: return "host_crash";
    case FaultKind::agent_pause: return "agent_pause";
    case FaultKind::agent_resume: return "agent_resume";
    case FaultKind::path_partition: return "path_partition";
    case FaultKind::path_heal: return "path_heal";
  }
  return "?";
}

struct FaultEvent {
  SimTime at = 0;  ///< absolute simulation time
  FaultKind kind = FaultKind::nic_link_down;
  fabric::HostId host = 0;
  double fraction = 1.0;  ///< nic_degrade/nic_restore: the degrade's line-rate
                          ///< fraction (the restore names which degrade heals)
  fabric::HostId peer = 0;  ///< path_partition/path_heal only: the far host
};

class FaultPlan {
 public:
  FaultPlan& add(FaultEvent event);

  // Convenience builders for the common fault/heal pairs.
  FaultPlan& link_flap(fabric::HostId host, SimTime at, SimDuration down_for);
  FaultPlan& rdma_outage(fabric::HostId host, SimTime at, SimDuration down_for);
  FaultPlan& dpdk_outage(fabric::HostId host, SimTime at, SimDuration down_for);
  FaultPlan& degrade(fabric::HostId host, SimTime at, double fraction,
                     SimDuration slow_for);
  FaultPlan& host_crash(fabric::HostId host, SimTime at);
  FaultPlan& agent_pause(fabric::HostId host, SimTime at, SimDuration pause_for);
  /// Severs the fabric path between `a` and `b` (both NICs stay healthy),
  /// healing after `down_for`.
  FaultPlan& path_partition(fabric::HostId a, fabric::HostId b, SimTime at,
                            SimDuration down_for);

  /// Events sorted by time (ties keep insertion order, for determinism).
  [[nodiscard]] std::vector<FaultEvent> events() const;
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Human-readable listing, one event per line (stable across runs).
  [[nodiscard]] std::string describe() const;

  /// Seeded random plan over hosts [0, hosts): `pairs` recoverable
  /// fault/heal pairs (no crashes) spread over [0, horizon). The same seed
  /// always yields the same plan.
  static FaultPlan random(std::uint64_t seed, std::size_t hosts, SimTime horizon,
                          std::size_t pairs);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace freeflow::faults
