// Executes a FaultPlan against the live cluster on the simulation clock.
// The injector is the only component allowed to mutate fabric health: it
// flips NIC/link state, crashes hosts (stopping their containers), pauses
// agents — and, after the modeled telemetry latency (fault_detect_ns),
// pushes the observed NIC health to the orchestrator, whose health
// callbacks then drive transport re-decisions everywhere.
//
// Every applied event is appended to a text trace; two runs of the same
// seeded simulation with the same plan must produce byte-identical traces
// (the determinism tests diff them).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "agent/agent.h"
#include "faults/fault_plan.h"
#include "orchestrator/network_orchestrator.h"

namespace freeflow::faults {

class FaultInjector {
 public:
  FaultInjector(orch::NetworkOrchestrator& orchestrator, agent::AgentFabric& agents);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event of `plan` on the event loop (times are absolute;
  /// events already in the past fire immediately). May be called repeatedly
  /// to layer plans.
  void arm(const FaultPlan& plan);

  /// Applies one event right now (tests drive single faults through this).
  void apply(const FaultEvent& event);

  [[nodiscard]] std::size_t faults_applied() const noexcept { return applied_; }
  /// One line per applied event, in application order.
  [[nodiscard]] const std::string& trace_text() const noexcept { return trace_; }

 private:
  sim::EventLoop& loop();
  fabric::Host& host(fabric::HostId id);
  /// Models fabric telemetry: after fault_detect_ns, reports the NIC health
  /// *as observed at that later time* to the orchestrator.
  void push_telemetry(fabric::HostId id);
  /// Path telemetry: after fault_detect_ns, reports the a<->b path state as
  /// observed at that later time.
  void push_path_telemetry(fabric::HostId a, fabric::HostId b);
  void crash_host(fabric::HostId id);
  void record(const FaultEvent& event);

  orch::NetworkOrchestrator& orchestrator_;
  agent::AgentFabric& agents_;
  /// Active degrade fractions per host. A degrade inserts its fraction and
  /// the NIC runs at the minimum (most severe wins); a restore erases only
  /// its own fraction, so overlapping degrade windows heal independently.
  std::unordered_map<fabric::HostId, std::multiset<double>> degrades_;
  std::string trace_;
  std::size_t applied_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace freeflow::faults
