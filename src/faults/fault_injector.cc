#include "faults/fault_injector.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"
#include "fabric/cluster.h"

namespace freeflow::faults {

FaultInjector::FaultInjector(orch::NetworkOrchestrator& orchestrator,
                             agent::AgentFabric& agents)
    : orchestrator_(orchestrator), agents_(agents) {}

FaultInjector::~FaultInjector() = default;

sim::EventLoop& FaultInjector::loop() {
  return orchestrator_.cluster_orch().cluster().loop();
}

fabric::Host& FaultInjector::host(fabric::HostId id) {
  return orchestrator_.cluster_orch().cluster().host(id);
}

void FaultInjector::arm(const FaultPlan& plan) {
  const SimTime now = loop().now();
  std::weak_ptr<bool> alive = alive_;
  for (const FaultEvent& event : plan.events()) {
    const SimDuration delay = event.at > now ? event.at - now : 0;
    loop().schedule(delay, [this, alive, event]() {
      if (alive.expired()) return;
      apply(event);
    });
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  fabric::Host& h = host(event.host);
  switch (event.kind) {
    case FaultKind::nic_link_down:
      h.nic().set_link_up(false);
      break;
    case FaultKind::nic_link_up:
      h.nic().set_link_up(true);
      break;
    case FaultKind::rdma_down:
      h.nic().set_rdma_up(false);
      break;
    case FaultKind::rdma_up:
      h.nic().set_rdma_up(true);
      break;
    case FaultKind::dpdk_down:
      h.nic().set_dpdk_up(false);
      break;
    case FaultKind::dpdk_up:
      h.nic().set_dpdk_up(true);
      break;
    case FaultKind::nic_degrade: {
      auto& active = degrades_[event.host];
      active.insert(event.fraction);
      h.nic().set_rate_fraction(*active.begin());
      break;
    }
    case FaultKind::nic_restore: {
      auto& active = degrades_[event.host];
      // Retire exactly this restore's degrade; a legacy restore whose
      // fraction matches nothing retires the most severe one instead.
      auto it = active.find(event.fraction);
      if (it == active.end() && !active.empty()) it = active.begin();
      if (it != active.end()) active.erase(it);
      h.nic().set_rate_fraction(active.empty() ? 1.0 : *active.begin());
      break;
    }
    case FaultKind::host_crash:
      crash_host(event.host);
      break;
    case FaultKind::agent_pause:
      agents_.agent_on(event.host).set_paused(true);
      break;
    case FaultKind::agent_resume:
      agents_.agent_on(event.host).set_paused(false);
      break;
    case FaultKind::path_partition:
      orchestrator_.cluster_orch().cluster().tor().set_partitioned(
          event.host, event.peer, true);
      break;
    case FaultKind::path_heal:
      orchestrator_.cluster_orch().cluster().tor().set_partitioned(
          event.host, event.peer, false);
      break;
  }
  record(event);
  // Agent pauses are invisible to fabric telemetry (the NIC is fine); path
  // faults surface through path telemetry (both NICs are healthy); all
  // other faults land in the orchestrator's per-NIC health map after the
  // modeled detection latency.
  if (event.kind == FaultKind::path_partition || event.kind == FaultKind::path_heal) {
    push_path_telemetry(event.host, event.peer);
  } else if (event.kind != FaultKind::agent_pause &&
             event.kind != FaultKind::agent_resume) {
    push_telemetry(event.host);
  }
}

void FaultInjector::crash_host(fabric::HostId id) {
  // Order matters: mark the host crashed first so the stop notifications
  // surface as host_crashed (not peer_bye) to every peer's close callback.
  fabric::Host& h = host(id);
  h.set_crashed(true);
  auto& cluster_orch = orchestrator_.cluster_orch();
  for (const auto& container : cluster_orch.containers_on(id)) {
    const Status st = cluster_orch.stop(container->id());
    if (!st.is_ok()) {
      FF_LOG(warn, "faults") << "stopping container " << container->id()
                             << " on crashed host: " << st;
    }
  }
}

void FaultInjector::push_telemetry(fabric::HostId id) {
  std::weak_ptr<bool> alive = alive_;
  const SimDuration detect =
      orchestrator_.cluster_orch().cluster().cost_model().fault_detect_ns;
  // Health is sampled when telemetry *fires*, not when the fault happened —
  // a flap shorter than the detection latency is never seen broken, exactly
  // like a polled monitoring pipeline.
  loop().schedule(detect, [this, alive, id]() {
    if (alive.expired()) return;
    orchestrator_.update_nic_health(id, host(id).nic().health());
  });
}

void FaultInjector::push_path_telemetry(fabric::HostId a, fabric::HostId b) {
  std::weak_ptr<bool> alive = alive_;
  const SimDuration detect =
      orchestrator_.cluster_orch().cluster().cost_model().fault_detect_ns;
  // Same polled-pipeline semantics as NIC telemetry: the path state is
  // sampled when the probe fires, so a sub-detection-latency blip is never
  // reported broken.
  loop().schedule(detect, [this, alive, a, b]() {
    if (alive.expired()) return;
    const bool up =
        !orchestrator_.cluster_orch().cluster().tor().partitioned(a, b);
    orchestrator_.update_path_health(a, b, up);
  });
}

void FaultInjector::record(const FaultEvent& event) {
  ++applied_;
  char line[128];
  if (event.kind == FaultKind::nic_degrade) {
    std::snprintf(line, sizeof(line), "t=%" PRId64 " host=%u %s frac=%.3f\n",
                  loop().now(), event.host, fault_kind_name(event.kind),
                  event.fraction);
  } else if (event.kind == FaultKind::path_partition ||
             event.kind == FaultKind::path_heal) {
    std::snprintf(line, sizeof(line), "t=%" PRId64 " host=%u %s peer=%u\n",
                  loop().now(), event.host, fault_kind_name(event.kind),
                  event.peer);
  } else {
    std::snprintf(line, sizeof(line), "t=%" PRId64 " host=%u %s\n", loop().now(),
                  event.host, fault_kind_name(event.kind));
  }
  trace_ += line;
  // Fault inject/heal markers land on the control-plane trace row (pid 0),
  // so failover spans line up against the fault that caused them.
  auto& tracer = orchestrator_.cluster_orch().cluster().telemetry().tracer();
  tracer.instant("fault", fault_kind_name(event.kind), 0, event.host,
                 telemetry::Tracer::arg("host", std::to_string(event.host)));
  FF_LOG(info, "faults") << "applied " << fault_kind_name(event.kind) << " on host "
                         << event.host;
}

}  // namespace freeflow::faults
