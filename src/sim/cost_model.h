// Calibration constants for the simulated testbed.
//
// The paper's testbed is a pair of Intel Xeon 2.40 GHz 4-core servers with
// 40 Gbps Mellanox CX3 (RoCE) NICs running Docker (CentOS 7). The constants
// below are chosen so the *textual* numbers in the paper re-emerge from
// resource contention in the simulation:
//
//   - TCP through the docker0 bridge:    ~27 Gb/s at ~200 % CPU     (§2.3.1)
//   - TCP in host mode:                  ~38 Gb/s                   (§2, fig)
//   - Overlay (software router) mode:    worse than host mode       (Fig. 1)
//   - RDMA (intra- or inter-host):       ~40 Gb/s (NIC line rate),
//                                        low host CPU               (§2.3.1)
//   - Shared memory:                     near memory bandwidth,
//                                        lowest latency, some CPU   (§2.3.1)
//
// Derivations (64 KiB GSO chunk):
//   host-mode TCP per-chunk CPU  = fixed + copy ≈ 13.9 µs  → ≈ 37.7 Gb/s
//   bridge adds ≈ 5.5 µs/chunk per side                    → ≈ 27.0 Gb/s
//   overlay router adds 2 copies + fixed ≈ 23.2 µs/chunk   → ≈ 22.6 Gb/s
//   RDMA NIC ≈ 780 ns per 4 KiB chunk                      → ≈ 42 Gb/s, so
//     the 40 Gb/s line rate is the binding cap (NIC processor ≈ 95 % busy)
//   SHM copy at 0.06 ns/B per side                         → ≈ 133 Gb/s/pair,
//     plateauing at the memory bus for multiple pairs
//
// All benchmarks read these through a `CostModel` instance so ablations can
// perturb individual stages.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace freeflow::sim {

struct CostModel {
  // ---- Host hardware -------------------------------------------------
  int cores_per_host = 4;
  double core_rate = 1e9;               ///< work-ns served per second per core
  double membus_bytes_per_sec = 50e9;   ///< ~400 Gb/s memory bandwidth

  // ---- Physical network ----------------------------------------------
  double nic_line_gbps = 40.0;          ///< CX3 line rate
  SimDuration link_prop_ns = 300;       ///< host <-> ToR propagation
  SimDuration switch_fwd_ns = 200;      ///< ToR forwarding latency

  // ---- Kernel TCP/IP stack (per GSO chunk of up to tcp_chunk_bytes) ---
  std::uint32_t tcp_chunk_bytes = 64 * 1024;
  double tcp_tx_fixed_ns = 3800;        ///< syscall + protocol tx
  double tcp_rx_fixed_ns = 3700;        ///< softirq + protocol rx
  double tcp_copy_ns_per_byte = 0.154;  ///< one user<->kernel copy
  SimDuration tcp_rx_wakeup_ns = 4000;  ///< scheduler wakeup on delivery
  SimDuration tcp_handshake_rtts = 2;   ///< SYN/SYNACK/ACK + slow-start warmup
  int tcp_window_chunks = 8;            ///< in-flight GSO chunks per connection
  SimDuration tcp_rto_ns = 5 * k_millisecond;
  double tcp_ack_ns = 800;              ///< ack gen/processing per data chunk

  // ---- veth + linux bridge hop (bridge/overlay modes), per chunk ------
  double bridge_fixed_ns = 1500;
  double bridge_ns_per_byte = 0.061;
  double bridge_ack_ns = 300;           ///< bridge hop cost for pure acks

  // ---- Overlay software router (per chunk) ----------------------------
  double router_fixed_ns = 3000;        ///< 2 syscalls + forwarding decision
  double router_copy_ns_per_byte = 0.154;  ///< charged twice (in + out)
  double vxlan_ns_per_chunk = 800;      ///< encap/decap, inter-host only
  std::uint32_t vxlan_header_bytes = 50;
  double router_ack_ns = 1000;          ///< router forwarding cost for pure acks

  // ---- RDMA verbs ------------------------------------------------------
  std::uint32_t rdma_mtu_bytes = 4096;
  double rdma_post_ns = 600;            ///< host CPU per posted verb
  double rdma_poll_ns = 300;            ///< host CPU per reaped completion
  double nic_proc_rate = 1e9;           ///< NIC processor work-ns per second
  double nic_pkt_fixed_ns = 400;        ///< NIC processor per packet
  double nic_pkt_ns_per_byte = 0.0928;  ///< NIC processor per byte
  double nic_dma_bus_bytes_factor = 1.0;  ///< membus bytes charged per wire byte

  // ---- Shared memory channel ------------------------------------------
  double shm_post_ns = 250;             ///< ring enqueue (sender CPU)
  double shm_poll_ns = 150;             ///< ring dequeue (receiver CPU)
  SimDuration shm_wakeup_ns = 300;      ///< cross-core notification latency
  double shm_copy_ns_per_byte = 0.060;  ///< streaming memcpy per side
  double shm_bus_bytes_factor = 2.0;    ///< membus bytes charged per payload byte

  // ---- DPDK poll-mode driver -------------------------------------------
  double dpdk_pkt_fixed_ns = 250;
  double dpdk_pkt_ns_per_byte = 0.061;  ///< ≈ 500 ns per 4 KiB chunk
  SimDuration dpdk_poll_gap_ns = 200;   ///< mean time until next poll iteration

  // ---- FreeFlow agent ---------------------------------------------------
  SimDuration agent_wakeup_ns = 500;    ///< CQ-notify wakeup at the agent
  double agent_record_ns = 300;         ///< agent CPU per relayed record
  double agent_copy_ns_per_byte = 0.060;  ///< only in copy-relay mode (ablation)

  // ---- FreeFlow control plane ------------------------------------------
  SimDuration orchestrator_rpc_ns = 50 * k_microsecond;  ///< location query RTT
  SimDuration location_cache_ttl_ns = 500 * k_millisecond;
  /// Library-side miss coalescing: decide() misses arriving within one
  /// window ride the same batched RPC to the home shard.
  SimDuration decide_batch_window_ns = 10 * k_microsecond;
  /// Orchestrator-shard service model: per-RPC fixed overhead plus a
  /// marginal cost per decision, served serially per shard — the quantity
  /// sharding divides. Cross-shard lookups add one forward round per
  /// distinct peer shard referenced by a batch.
  SimDuration orchestrator_batch_fixed_ns = 5 * k_microsecond;
  SimDuration orchestrator_decide_service_ns = 100;
  SimDuration cross_shard_forward_ns = 2 * k_microsecond;
  /// Negative decide answers (unknown container) are cached this long so
  /// retry loops don't hammer the shards.
  SimDuration negative_decision_ttl_ns = 10 * k_millisecond;

  // ---- Fault tolerance --------------------------------------------------
  /// Fabric telemetry latency: time from a NIC fault to the orchestrator's
  /// health map reflecting it (and re-decision callbacks firing).
  SimDuration fault_detect_ns = 200 * k_microsecond;
  /// Close handshake: how long a closing conduit waits for the peer's
  /// bye_ack before giving up (CloseReason::drain_timeout).
  SimDuration close_drain_timeout_ns = 5 * k_millisecond;

  // ---- Planned live migration (src/migration) --------------------------
  /// Quiesce budget: how long the coordinator waits for each paused
  /// conduit's retained window to drain before capturing it anyway (the
  /// undrained tail replays at the destination, peers dedup — lossless).
  SimDuration migration_quiesce_deadline_ns = 2 * k_millisecond;
  /// Destination-side activation: restore + container unfreeze fixed cost.
  /// Models a pre-copied migration where only the final connection image
  /// bounds the blackout (the memory pre-copy overlaps with execution);
  /// contrast the 50 ms stop-and-copy default of the *reactive*
  /// ClusterOrchestrator::migrate path.
  SimDuration migration_resume_fixed_ns = 300 * k_microsecond;
  /// Transfer cost per MigrationImage byte (~40 GB/s state push).
  double migration_image_byte_ns = 0.025;

  [[nodiscard]] double nic_line_bytes_per_sec() const noexcept {
    return nic_line_gbps * 1e9 / 8.0;
  }
  /// NIC processor work units for one packet of `bytes`.
  [[nodiscard]] double nic_pkt_cost(std::uint32_t bytes) const noexcept {
    return nic_pkt_fixed_ns + nic_pkt_ns_per_byte * static_cast<double>(bytes);
  }
  [[nodiscard]] double tcp_tx_cost(std::uint32_t bytes) const noexcept {
    return tcp_tx_fixed_ns + tcp_copy_ns_per_byte * static_cast<double>(bytes);
  }
  [[nodiscard]] double tcp_rx_cost(std::uint32_t bytes) const noexcept {
    return tcp_rx_fixed_ns + tcp_copy_ns_per_byte * static_cast<double>(bytes);
  }
  [[nodiscard]] double bridge_cost(std::uint32_t bytes) const noexcept {
    return bridge_fixed_ns + bridge_ns_per_byte * static_cast<double>(bytes);
  }
  [[nodiscard]] double router_cost(std::uint32_t bytes) const noexcept {
    return router_fixed_ns + 2.0 * router_copy_ns_per_byte * static_cast<double>(bytes);
  }
  [[nodiscard]] double dpdk_pkt_cost(std::uint32_t bytes) const noexcept {
    return dpdk_pkt_fixed_ns + dpdk_pkt_ns_per_byte * static_cast<double>(bytes);
  }
};

}  // namespace freeflow::sim
