// Discrete-event simulation core: a virtual nanosecond clock and an event
// queue. The whole cluster simulation is single-threaded and deterministic;
// all concurrency in the modeled system is expressed as events.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace freeflow::sim {

/// Handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly.
  void cancel() noexcept {
    if (auto p = cancelled_.lock()) *p = true;
    cancelled_.reset();
  }

  [[nodiscard]] bool pending() const noexcept {
    auto p = cancelled_.lock();
    return p != nullptr && !*p;
  }

 private:
  friend class EventLoop;
  explicit EventHandle(std::weak_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::weak_ptr<bool> cancelled_;
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` ns from now (>= 0). FIFO among equal times.
  EventHandle schedule(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute virtual time (>= now()).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Runs events until the queue is empty. Returns the final time.
  SimTime run();

  /// Runs events with timestamp <= deadline; advances now() to deadline
  /// if the queue empties or the next event is later.
  SimTime run_until(SimTime deadline);

  /// Convenience: run_until(now() + duration).
  SimTime run_for(SimDuration duration) { return run_until(now_ + duration); }

  /// Executes the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events currently queued (including cancelled tombstones).
  [[nodiscard]] std::size_t queue_size() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace freeflow::sim
