// Discrete-event simulation core: a virtual nanosecond clock and an event
// queue. The whole cluster simulation is single-threaded and deterministic;
// all concurrency in the modeled system is expressed as events.
//
// Hot-path layout (see DESIGN.md "Event-loop internals"):
//   - Events carry their callback inline (EventFn, a fixed-capacity SBO
//     callable) — scheduling performs no heap allocation.
//   - Near events (< ~8.2 us ahead) live in a timer wheel of 2^13
//     one-nanosecond slots with a two-level occupancy bitmap; far events
//     overflow into a position-tracked binary heap ordered by (time, seq).
//   - schedule() is the fast non-cancellable path. schedule_cancellable()
//     alone pays for a cancellation token, served from a freelist.
//   - Execution order is globally (time, seq): FIFO among equal timestamps,
//     across the wheel/heap boundary — identical, bit for bit, to the
//     single-priority-queue implementation it replaced.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/inline_function.h"
#include "common/status.h"
#include "common/units.h"

namespace freeflow::sim {

/// Event callback. 96 bytes of inline capture: enough for a handful of
/// pointers plus an embedded completion callable; anything larger is a
/// compile error (shrink the capture or box it).
using EventFn = common::InlineFunction<void(), 96>;

class EventLoop;

/// Cancellation state for one scheduled event, recycled via a freelist.
/// `gen` is bumped whenever the token is released (event fired or
/// cancelled), so stale EventHandles see a generation mismatch instead of
/// cancelling an unrelated later event.
struct CancelToken {
  std::uint64_t gen = 0;
  SimTime at = 0;
  std::uint64_t seq = 0;
  bool in_heap = false;
  bool maintenance = false;
  std::uint32_t heap_pos = 0;
};

/// Handle to a cancellable event. Copyable; must not outlive its EventLoop.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet, eagerly reclaiming its queue
  /// slot and destroying the callback. Safe to call repeatedly.
  void cancel() noexcept;

  /// True while the event is scheduled and neither fired nor cancelled.
  /// (Unlike the old implementation, this is already false while the event's
  /// own callback is running.)
  [[nodiscard]] bool pending() const noexcept {
    return token_ != nullptr && token_->gen == gen_;
  }

 private:
  friend class EventLoop;
  EventHandle(EventLoop* loop, CancelToken* token, std::uint64_t gen) noexcept
      : loop_(loop), token_(token), gen_(gen) {}

  EventLoop* loop_ = nullptr;
  CancelToken* token_ = nullptr;
  std::uint64_t gen_ = 0;
};

class EventLoop {
 public:
  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` ns from now (>= 0). FIFO among equal
  /// times. Fast path: no cancellation token, no allocation. Templated on
  /// the callable so the capture is constructed directly inside queue
  /// storage — zero intermediate moves of the (up to 96-byte) EventFn.
  template <typename F>
  void schedule(SimDuration delay, F&& fn) {
    FF_CHECK(delay >= 0);
    insert(now_ + delay, std::forward<F>(fn), nullptr);
  }

  /// Schedules `fn` at an absolute virtual time (>= now()).
  template <typename F>
  void schedule_at(SimTime at, F&& fn) {
    FF_CHECK(at >= now_);
    insert(at, std::forward<F>(fn), nullptr);
  }

  /// Like schedule(), but returns a handle that can cancel the event. Only
  /// this path pays for a cancellation token (freelist-recycled).
  template <typename F>
  EventHandle schedule_cancellable(SimDuration delay, F&& fn) {
    FF_CHECK(delay >= 0);
    return schedule_cancellable_at(now_ + delay, std::forward<F>(fn));
  }

  template <typename F>
  EventHandle schedule_cancellable_at(SimTime at, F&& fn) {
    FF_CHECK(at >= now_);
    CancelToken* t = acquire_token();
    insert(at, std::forward<F>(fn), t);
    return {this, t, t->gen};
  }

  /// Quiesce API: schedules a *maintenance* event — a periodic housekeeping
  /// timer (heartbeat monitor, stats flush) that should not keep the
  /// simulation alive on its own. run() treats the queue as idle once only
  /// maintenance events remain and returns without executing them; they
  /// still fire normally under step()/run_until()/run_for(), and a
  /// maintenance callback that re-arms itself stays maintenance. Always
  /// cancellable: owners cancel on teardown, and events left queued when
  /// run() quiesces die with the loop.
  template <typename F>
  EventHandle schedule_maintenance(SimDuration delay, F&& fn) {
    FF_CHECK(delay >= 0);
    CancelToken* t = acquire_token();
    t->maintenance = true;
    ++maintenance_live_;
    insert(now_ + delay, std::forward<F>(fn), t);
    return {this, t, t->gen};
  }

  /// Runs events until only maintenance events (or nothing) remain, i.e.
  /// until the simulation has quiesced. Returns the final time.
  SimTime run();

  /// Runs events with timestamp <= deadline; advances now() to deadline
  /// if the queue empties or the next event is later.
  SimTime run_until(SimTime deadline);

  /// Convenience: run_until(now() + duration).
  SimTime run_for(SimDuration duration) { return run_until(now_ + duration); }

  /// Executes the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of LIVE events currently queued. Cancelled events are reclaimed
  /// eagerly and never counted. Derived, not tracked: the hot path keeps no
  /// aggregate counter (wheel_live_ already includes mid-drain events).
  [[nodiscard]] std::size_t queue_size() const noexcept {
    return wheel_live_ + heap_.size();
  }

  /// Live maintenance events (see schedule_maintenance).
  [[nodiscard]] std::size_t maintenance_size() const noexcept {
    return maintenance_live_;
  }
  /// Live events that keep run() going: queue_size() minus maintenance.
  [[nodiscard]] std::size_t blocking_size() const noexcept {
    return queue_size() - maintenance_live_;
  }

 private:
  friend class EventHandle;

  struct Event {
    Event() noexcept : at(0), seq(0), token(nullptr) {}  // heap_push hole
    template <typename F>
    Event(SimTime at_, std::uint64_t seq_, CancelToken* token_, F&& fn_)
        : at(at_), seq(seq_), token(token_), fn(std::forward<F>(fn_)) {}
    Event(Event&&) noexcept = default;
    Event& operator=(Event&&) noexcept = default;

    SimTime at;
    std::uint64_t seq;
    CancelToken* token;  // null for the non-cancellable fast path
    EventFn fn;
  };

  /// One wheel slot: all queued events sharing a single timestamp (see the
  /// uniqueness invariant in DESIGN.md), in insertion (= seq) order.
  using Slot = std::vector<Event>;

  // 2^13 slots: an 8.2 us horizon covers every per-hop/per-packet delay in
  // the cost model (control-plane timers overflow to the heap), and the
  // whole wheel's slot headers (~192 KB) stay cache-resident — measured
  // ~40% faster than 2^15 on the micro-ring bench.
  static constexpr std::uint32_t k_wheel_bits = 13;
  static constexpr std::uint32_t k_wheel_slots = 1U << k_wheel_bits;  // 8.2 us horizon
  static constexpr std::uint32_t k_wheel_mask = k_wheel_slots - 1;
  static constexpr std::uint32_t k_bitmap_words = k_wheel_slots / 64;   // 128
  static constexpr std::uint32_t k_summary_words = k_bitmap_words / 64;  // 2

  /// Routes one event into the wheel or the overflow heap. Templated so the
  /// wheel path's emplace_back constructs the callable in place.
  template <typename F>
  void insert(SimTime at, F&& fn, CancelToken* token) {
    const std::uint64_t seq = next_seq_++;
    if (token != nullptr) {
      token->at = at;
      token->seq = seq;
    }
    if (at - now_ < static_cast<SimTime>(k_wheel_slots)) {
      // Near event: its slot maps to a unique timestamp within the horizon,
      // so a slot's vector is FIFO-in-seq by construction.
      const auto idx = static_cast<std::uint32_t>(at & k_wheel_mask);
      Slot& slot = wheel_[idx];
      if (slot.empty()) set_bit(idx);
      slot.emplace_back(at, seq, token, std::forward<F>(fn));
      if (token != nullptr) token->in_heap = false;
      ++wheel_live_;
    } else {
      if (token != nullptr) token->in_heap = true;
      heap_push(Event(at, seq, token, std::forward<F>(fn)));
    }
  }
  /// Next wheel event in (at, seq) order, or null: the drain-buffer head if
  /// a slot is mid-drain, else the front of the next occupied slot (whose
  /// index is cached in scanned_slot_ for step() to drain on commit).
  const Event* peek_wheel() noexcept;
  [[nodiscard]] std::int32_t scan_bitmap(std::uint32_t begin_slot) const noexcept;

  void set_bit(std::uint32_t slot) noexcept;
  void clear_bit(std::uint32_t slot) noexcept;

  // Position-tracked binary min-heap ordered by (at, seq): cancellation can
  // remove an arbitrary entry eagerly via its token's heap_pos.
  void heap_push(Event ev);
  Event heap_pop_min();
  void heap_remove(std::uint32_t pos);
  void heap_place(std::uint32_t pos, Event ev) noexcept;
  std::uint32_t sift_up(std::uint32_t pos, const Event& ev) noexcept;
  std::uint32_t sift_down(std::uint32_t pos, const Event& ev) noexcept;

  CancelToken* acquire_token();
  void release_token(CancelToken* t) noexcept;
  void cancel_token(CancelToken* t, std::uint64_t gen) noexcept;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t wheel_live_ = 0;  // live wheel events, incl. mid-drain
  std::size_t maintenance_live_ = 0;

  std::vector<Slot> wheel_;
  std::vector<std::uint64_t> bitmap_;
  std::vector<std::uint64_t> summary_;
  std::vector<Event> heap_;

  // The slot currently being drained, swapped out of the wheel whole only
  // once its first event executes (see step()). Events here still count as
  // wheel_live_. scanned_slot_ is the index peek_wheel() last landed on.
  std::vector<Event> drain_buf_;
  std::size_t drain_head_ = 0;
  std::uint32_t scanned_slot_ = 0;

  std::deque<CancelToken> token_pool_;      // stable addresses
  std::vector<CancelToken*> free_tokens_;
};

inline void EventHandle::cancel() noexcept {
  if (loop_ != nullptr) loop_->cancel_token(token_, gen_);
}

}  // namespace freeflow::sim
