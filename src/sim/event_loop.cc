#include "sim/event_loop.h"

namespace freeflow::sim {

EventHandle EventLoop::schedule(SimDuration delay, std::function<void()> fn) {
  FF_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle EventLoop::schedule_at(SimTime at, std::function<void()> fn) {
  FF_CHECK(at >= now_);
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(cancelled)};
  queue_.push(Event{at, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

SimTime EventLoop::run() {
  while (step()) {
  }
  return now_;
}

SimTime EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace freeflow::sim
