#include "sim/event_loop.h"

#include <bit>

namespace freeflow::sim {

namespace {
/// Global execution order: (timestamp, insertion seq).
inline bool earlier(SimTime a_at, std::uint64_t a_seq, SimTime b_at,
                    std::uint64_t b_seq) noexcept {
  return a_at < b_at || (a_at == b_at && a_seq < b_seq);
}
}  // namespace

EventLoop::EventLoop()
    : wheel_(k_wheel_slots),
      bitmap_(k_bitmap_words, 0),
      summary_(k_summary_words, 0) {}

// -------------------------------------------------------------- execution

const EventLoop::Event* EventLoop::peek_wheel() noexcept {
  if (drain_head_ < drain_buf_.size()) return &drain_buf_[drain_head_];
  if (wheel_live_ == 0) return nullptr;
  const auto cursor = static_cast<std::uint32_t>(now_ & k_wheel_mask);
  std::int32_t s = scan_bitmap(cursor);
  if (s < 0) s = scan_bitmap(0);  // wrapped: slots before the cursor are later times
  if (s < 0) return nullptr;      // unreachable while wheel_live_ > 0
  // Peek only — the slot is drained lazily by step() once it wins the
  // (at, seq) tie-break against the heap. Swapping it out here would be
  // premature: a heap event executing first could schedule a new wheel
  // event earlier than this slot's timestamp, which a non-empty drain
  // buffer would wrongly shadow.
  scanned_slot_ = static_cast<std::uint32_t>(s);
  return &wheel_[scanned_slot_].front();
}

std::int32_t EventLoop::scan_bitmap(std::uint32_t begin_slot) const noexcept {
  std::uint32_t w = begin_slot >> 6;
  const std::uint64_t first = bitmap_[w] & (~0ULL << (begin_slot & 63U));
  if (first != 0) {
    return static_cast<std::int32_t>((w << 6) + std::countr_zero(first));
  }
  // Skip empty words via the summary level (one bit per bitmap word).
  for (std::uint32_t word = w + 1; word < k_bitmap_words;) {
    const std::uint32_t sw = word >> 6;
    const std::uint64_t sbits = summary_[sw] >> (word & 63U);
    if (sbits == 0) {
      word = (sw + 1) << 6;
      continue;
    }
    word += static_cast<std::uint32_t>(std::countr_zero(sbits));
    return static_cast<std::int32_t>((word << 6) +
                                     std::countr_zero(bitmap_[word]));
  }
  return -1;
}

void EventLoop::set_bit(std::uint32_t slot) noexcept {
  bitmap_[slot >> 6] |= 1ULL << (slot & 63U);
  summary_[slot >> 12] |= 1ULL << ((slot >> 6) & 63U);
}

void EventLoop::clear_bit(std::uint32_t slot) noexcept {
  std::uint64_t& word = bitmap_[slot >> 6];
  word &= ~(1ULL << (slot & 63U));
  if (word == 0) summary_[slot >> 12] &= ~(1ULL << ((slot >> 6) & 63U));
}

bool EventLoop::step() {
  if (wheel_live_ == 0 && heap_.empty()) return false;
  const Event* w = peek_wheel();
  bool from_heap;
  if (w == nullptr) {
    from_heap = true;
  } else if (heap_.empty()) {
    from_heap = false;
  } else {
    const Event& h = heap_.front();
    from_heap = earlier(h.at, h.seq, w->at, w->seq);
  }
  ++executed_;
  if (from_heap) {
    Event ev = heap_pop_min();
    now_ = ev.at;
    if (ev.token != nullptr) release_token(ev.token);
    ev.fn();
  } else {
    if (drain_head_ >= drain_buf_.size()) {
      // Commit to the slot peek_wheel() found: swap it out whole. Its first
      // event executes now, so now_ advances to the slot's timestamp and no
      // later insert can be earlier than the buffered remainder. The slot
      // inherits the buffer's (empty, capacity-bearing) storage, so slot and
      // buffer capacities recirculate — steady state never reallocates. The
      // bit clears now; a callback scheduling back into the same residue
      // starts a fresh slot (same timestamp, higher seq: still FIFO).
      drain_buf_.clear();
      drain_head_ = 0;
      std::swap(drain_buf_, wheel_[scanned_slot_]);
      clear_bit(scanned_slot_);
    }
    // Invoke in place: the drain buffer never reallocates or shifts at or
    // below drain_head_ while a callback runs (refills need an empty buffer,
    // cancellation only erases live entries at >= drain_head_), so the
    // callback executes straight out of queue storage with no final move.
    Event& ev = drain_buf_[drain_head_++];
    --wheel_live_;
    now_ = ev.at;
    if (ev.token != nullptr) release_token(ev.token);
    ev.fn();
    ev.fn = nullptr;  // destroy the capture now, not at the next slot refill
  }
  return true;
}

SimTime EventLoop::run() {
  // Quiesce: stop once only maintenance events remain. They stay queued —
  // run() leaves them for a later run()/run_until(), a cancelling owner, or
  // the loop's destructor. (A maintenance event that is *earlier* than live
  // blocking work still fires in order via step.)
  while (wheel_live_ + heap_.size() > maintenance_live_) {
    step();
  }
  return now_;
}

SimTime EventLoop::run_until(SimTime deadline) {
  while (wheel_live_ != 0 || !heap_.empty()) {
    const Event* w = peek_wheel();
    SimTime next_at = 0;
    bool have = false;
    if (w != nullptr) {
      next_at = w->at;
      have = true;
    }
    if (!heap_.empty() && (!have || heap_.front().at < next_at)) {
      next_at = heap_.front().at;
      have = true;
    }
    if (!have || next_at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

// ------------------------------------------------------------ cancellation

CancelToken* EventLoop::acquire_token() {
  if (free_tokens_.empty()) {
    token_pool_.emplace_back();
    return &token_pool_.back();
  }
  CancelToken* t = free_tokens_.back();
  free_tokens_.pop_back();
  return t;
}

void EventLoop::release_token(CancelToken* t) noexcept {
  ++t->gen;  // invalidates every outstanding handle for this arming
  if (t->maintenance) {
    // Both paths that release (event fired, event cancelled) end the
    // maintenance obligation; a re-arming callback re-registers.
    t->maintenance = false;
    --maintenance_live_;
  }
  free_tokens_.push_back(t);
}

void EventLoop::cancel_token(CancelToken* t, std::uint64_t gen) noexcept {
  if (t == nullptr || t->gen != gen) return;  // already fired or cancelled
  if (t->in_heap) {
    heap_remove(t->heap_pos);
  } else {
    // The event sits either in the drain buffer (its slot is mid-drain) or
    // in its wheel slot. Erase eagerly: no tombstones, no deferred sweep.
    bool erased = false;
    if (drain_head_ < drain_buf_.size() && drain_buf_.front().at == t->at) {
      for (std::size_t i = drain_head_; i < drain_buf_.size(); ++i) {
        if (drain_buf_[i].seq == t->seq) {
          drain_buf_.erase(drain_buf_.begin() + static_cast<std::ptrdiff_t>(i));
          erased = true;
          break;
        }
      }
    }
    if (!erased) {
      const auto idx = static_cast<std::uint32_t>(t->at & k_wheel_mask);
      Slot& slot = wheel_[idx];
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (slot[i].seq == t->seq) {
          slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      if (slot.empty()) clear_bit(idx);
    }
    --wheel_live_;
  }
  release_token(t);
}

// ------------------------------------------------- position-tracked heap

void EventLoop::heap_place(std::uint32_t pos, Event ev) noexcept {
  heap_[pos] = std::move(ev);
  if (heap_[pos].token != nullptr) heap_[pos].token->heap_pos = pos;
}

std::uint32_t EventLoop::sift_up(std::uint32_t pos, const Event& ev) noexcept {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    Event& p = heap_[parent];
    if (!earlier(ev.at, ev.seq, p.at, p.seq)) break;
    heap_place(pos, std::move(p));
    pos = parent;
  }
  return pos;
}

std::uint32_t EventLoop::sift_down(std::uint32_t pos, const Event& ev) noexcept {
  const auto size = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size && earlier(heap_[child + 1].at, heap_[child + 1].seq,
                                    heap_[child].at, heap_[child].seq)) {
      ++child;
    }
    Event& c = heap_[child];
    if (!earlier(c.at, c.seq, ev.at, ev.seq)) break;
    heap_place(pos, std::move(c));
    pos = child;
  }
  return pos;
}

void EventLoop::heap_push(Event ev) {
  heap_.emplace_back();  // hole at the end; filled via heap_place below
  const auto pos = sift_up(static_cast<std::uint32_t>(heap_.size() - 1), ev);
  heap_place(pos, std::move(ev));
}

EventLoop::Event EventLoop::heap_pop_min() {
  Event top = std::move(heap_.front());
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    const auto pos = sift_down(0, last);
    heap_place(pos, std::move(last));
  }
  return top;
}

void EventLoop::heap_remove(std::uint32_t pos) {
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (pos < heap_.size()) {
    // Re-insert the displaced tail entry at the vacated position.
    std::uint32_t p = sift_up(pos, last);
    if (p == pos) p = sift_down(pos, last);
    heap_place(p, std::move(last));
  }
}

}  // namespace freeflow::sim
