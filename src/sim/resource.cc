#include "sim/resource.h"

#include <algorithm>

#include "common/status.h"

namespace freeflow::sim {

Resource::Resource(EventLoop& loop, std::string name, double units_per_second, int servers)
    : loop_(loop), name_(std::move(name)), units_per_second_(units_per_second) {
  FF_CHECK(units_per_second > 0);
  FF_CHECK(servers >= 1);
  free_at_.assign(static_cast<std::size_t>(servers), 0);
}

SimDuration Resource::service_time(double units) const noexcept {
  if (units <= 0) return 0;
  return static_cast<SimDuration>(units / units_per_second_ * 1e9);
}

void Resource::submit(double units, DoneFn on_done, UsageAccount* account,
                      SimDuration extra_delay) {
  // FIFO assignment to the earliest-free server.
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  const SimTime start = std::max(loop_.now(), *it);
  const SimDuration svc = service_time(units);
  const SimTime done = start + svc;
  *it = done;
  if (!on_done && extra_delay == 0) {
    // Fire-and-forget (utilization charges, bus coupling): nobody observes
    // the completion, so account eagerly and skip the event entirely. The
    // server stays occupied via free_at_, which is all later jobs see.
    busy_ns_ += static_cast<double>(svc);
    ++jobs_served_;
    if (account != nullptr) account->busy_ns += static_cast<double>(svc);
    return;
  }
  loop_.schedule_at(done + extra_delay,
                    [this, svc, account, cb = std::move(on_done)]() mutable {
                      busy_ns_ += static_cast<double>(svc);
                      ++jobs_served_;
                      if (account != nullptr) account->busy_ns += static_cast<double>(svc);
                      if (cb) cb();
                    });
}

SimDuration Resource::backlog_ns() const noexcept {
  const SimTime now = loop_.now();
  SimTime least = *std::min_element(free_at_.begin(), free_at_.end());
  return std::max<SimDuration>(0, least - now);
}

void Resource::mark() noexcept {
  mark_busy_ns_ = busy_ns_;
  mark_time_ = loop_.now();
}

double Resource::utilization_since_mark() const noexcept {
  const double window = static_cast<double>(loop_.now() - mark_time_);
  if (window <= 0) return 0.0;
  return (busy_ns_ - mark_busy_ns_) / (window * static_cast<double>(free_at_.size()));
}

double Resource::cores_busy_since_mark() const noexcept {
  return utilization_since_mark() * static_cast<double>(free_at_.size());
}

void SerialExecutor::submit(double units, DoneFn done, UsageAccount* account,
                            Resource* bus, double bus_bytes) {
  // Wakeup batching: a queued completion-less job with no bus coupling is
  // pure serial work, so the new job folds into it instead of paying
  // another pool round-trip (one completion event serves both). The merged
  // job inherits the new completion, which fires after both units of work —
  // exactly what FIFO ordering promised anyway.
  if (!queue_.empty()) {
    Job& back = queue_.back();
    if (!back.done && back.bus == nullptr && bus == nullptr &&
        back.account == account) {
      back.units += units;
      back.done = std::move(done);
      back.bus_bytes = bus_bytes;
      ++coalesced_;
      return;
    }
  }
  queue_.push_back(Job{units, std::move(done), account, bus, bus_bytes});
  if (!busy_) start_next();
}

void SerialExecutor::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  active_ = std::move(queue_.front());
  queue_.pop_front();

  if (active_.bus != nullptr && active_.bus_bytes > 0) {
    // Memory-bus coupling: the copy stalls by the bus backlog seen now.
    const SimDuration wait = active_.bus->backlog_ns();
    active_.bus->submit(active_.bus_bytes, nullptr);
    if (wait > 0) {
      pool_.loop().schedule(wait, [this, alive = std::weak_ptr<const bool>(alive_)]() {
        if (!alive.expired()) launch_active();
      });
      return;
    }
  }
  launch_active();
}

void SerialExecutor::launch_active() {
  pool_.submit(active_.units,
               [this, alive = std::weak_ptr<const bool>(alive_)]() {
                 if (!alive.expired()) finish_active();
               },
               active_.account);
}

void SerialExecutor::finish_active() {
  std::weak_ptr<const bool> alive = alive_;
  DoneFn done = std::move(active_.done);
  if (done) done();  // may re-submit — or destroy this executor entirely
  if (!alive.expired()) start_next();
}

}  // namespace freeflow::sim
