// Rate-limited FIFO resources: CPU core pools, memory buses, NIC processors
// and links are all instances of `Resource`. Jobs occupy one server for
// (units / units_per_second) of virtual time; contention and therefore
// throughput ceilings and utilization emerge from the queueing.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/inline_function.h"
#include "common/units.h"
#include "sim/event_loop.h"

namespace freeflow::sim {

/// Per-consumer usage tally, e.g. "CPU burned by container c7's TCP stack".
struct UsageAccount {
  std::string name;
  double busy_ns = 0;

  explicit UsageAccount(std::string n = "") : name(std::move(n)) {}
};

/// Completion callback for resource jobs. Inline capture only (64 bytes):
/// keeps the packet hot path allocation-free. Sized so that one embedded
/// std::function or a few pointers fit; a larger capture fails to compile.
using DoneFn = common::InlineFunction<void(), 64>;

class Resource {
 public:
  /// `units_per_second`: service rate of EACH server (e.g. 1e9 "work-ns" per
  /// second for a CPU core, or bytes/sec for a link).
  /// `servers`: number of parallel servers (e.g. CPU cores).
  Resource(EventLoop& loop, std::string name, double units_per_second, int servers = 1);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Enqueues `units` of work. `on_done` fires when service completes plus
  /// `extra_delay` (used for link propagation). `account`, if non-null, is
  /// charged the service time.
  void submit(double units, DoneFn on_done, UsageAccount* account = nullptr,
              SimDuration extra_delay = 0);

  /// Service time for `units` of work on one server, in virtual ns.
  [[nodiscard]] SimDuration service_time(double units) const noexcept;

  /// Work currently queued or in service, expressed as ns until the least
  /// loaded server frees up. 0 when a server is idle.
  [[nodiscard]] SimDuration backlog_ns() const noexcept;

  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int servers() const noexcept { return static_cast<int>(free_at_.size()); }
  [[nodiscard]] double rate() const noexcept { return units_per_second_; }
  [[nodiscard]] std::uint64_t jobs_served() const noexcept { return jobs_served_; }
  [[nodiscard]] double busy_ns_total() const noexcept { return busy_ns_; }

  /// Starts a measurement window at the current virtual time.
  void mark() noexcept;

  /// Fraction of total capacity used since mark(), in [0, ~1].
  [[nodiscard]] double utilization_since_mark() const noexcept;

  /// Same, expressed like `top`: 1.0 per fully-busy server (so a 4-core pool
  /// can report up to 4.0, i.e. "400 %").
  [[nodiscard]] double cores_busy_since_mark() const noexcept;

 private:
  EventLoop& loop_;
  std::string name_;
  double units_per_second_;
  std::vector<SimTime> free_at_;

  std::uint64_t jobs_served_ = 0;
  double busy_ns_ = 0;
  double mark_busy_ns_ = 0;
  SimTime mark_time_ = 0;
};

/// A single software thread multiplexed onto a core pool: jobs submitted
/// here run one at a time (in order), each occupying one pool server while
/// active. This models the fact that one connection's stack processing (or
/// one router/agent process) cannot use more than one core, which is what
/// keeps per-flow TCP throughput CPU-bound at realistic values.
class SerialExecutor {
 public:
  explicit SerialExecutor(Resource& pool) : pool_(pool) {}

  SerialExecutor(const SerialExecutor&) = delete;
  SerialExecutor& operator=(const SerialExecutor&) = delete;

  /// Runs `units` of work (after an optional pre-delay modeling memory-bus
  /// backpressure computed at start time via `bus_bytes` on `bus`).
  /// Consecutive completion-less, bus-less submissions for the same account
  /// are coalesced into one pool job (wakeup batching).
  void submit(double units, DoneFn done, UsageAccount* account = nullptr,
              Resource* bus = nullptr, double bus_bytes = 0);

  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  /// How many submissions were folded into an already-queued job.
  [[nodiscard]] std::uint64_t coalesced() const noexcept { return coalesced_; }

 private:
  struct Job {
    double units;
    DoneFn done;
    UsageAccount* account;
    Resource* bus;
    double bus_bytes;
  };

  // The in-flight job lives in `active_` (not in a callback capture): the
  // loop/pool callbacks then only capture `this`, which keeps them well under
  // the inline-capture budget and avoids nesting DoneFn inside DoneFn.
  void start_next();
  void launch_active();
  void finish_active();

  Resource& pool_;
  std::deque<Job> queue_;
  Job active_{};
  bool busy_ = false;
  std::uint64_t coalesced_ = 0;
  /// Liveness token: pool/loop completions hold a weak observer, so an
  /// executor destroyed with work in flight (channel teardown) turns its
  /// pending completions into no-ops instead of use-after-free — and queued
  /// jobs never need to keep their owner alive (which would be a leak cycle
  /// for jobs that are still queued at shutdown).
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace freeflow::sim
