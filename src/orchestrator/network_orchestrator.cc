#include "orchestrator/network_orchestrator.h"

#include "common/logging.h"

namespace freeflow::orch {

namespace {
std::uint64_t trust_key(TenantId a, TenantId b) noexcept {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}
std::uint64_t path_key(fabric::HostId a, fabric::HostId b) noexcept {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}
}  // namespace

std::string_view transport_name(Transport t) noexcept {
  switch (t) {
    case Transport::shm: return "shm";
    case Transport::rdma: return "rdma";
    case Transport::dpdk: return "dpdk";
    case Transport::tcp_host: return "tcp-host";
    case Transport::tcp_overlay: return "tcp-overlay";
  }
  return "?";
}

NetworkOrchestrator::NetworkOrchestrator(ClusterOrchestrator& cluster_orch)
    : cluster_(cluster_orch) {
  cluster_.on_moved([this](const Container& c) {
    for (auto& fn : move_subscribers_) fn(c);
  });
}

void NetworkOrchestrator::set_tenant_trust(TenantId a, TenantId b, bool is_trusted) {
  // Only actual transitions notify: a redundant grant or revoke changes no
  // decision, so it must not trigger a fleet-wide cache flush.
  const bool changed = is_trusted ? tenant_trust_.insert(trust_key(a, b)).second
                                  : tenant_trust_.erase(trust_key(a, b)) > 0;
  if (!changed) return;
  FF_LOG(info, "orch") << "tenant trust " << a << " <-> " << b
                       << (is_trusted ? " granted" : " revoked");
  // Snapshot-by-size like notify_health: a subscriber may subscribe more.
  const std::size_t n = trust_subscribers_.size();
  for (std::size_t i = 0; i < n; ++i) trust_subscribers_[i](a, b, is_trusted);
}

void NetworkOrchestrator::subscribe_trust_changes(TrustFn fn) {
  trust_subscribers_.push_back(std::move(fn));
}

bool NetworkOrchestrator::trusted(const Container& a, const Container& b) const {
  if (a.tenant() == b.tenant()) return true;
  return tenant_trust_.contains(trust_key(a.tenant(), b.tenant()));
}

fabric::HostId NetworkOrchestrator::physical_machine(fabric::HostId host) const {
  const fabric::Host& h = cluster_.cluster().host(host);
  return h.physical_machine().value_or(host);
}

TransportDecision NetworkOrchestrator::decide(const Container& src,
                                              const Container& dst) const {
  TransportDecision d = decide_impl(src, dst);
  // Control-plane rate: a by-name registry lookup per decision is fine here
  // (unlike the per-packet paths, which cache counter pointers).
  auto& m = cluster_.cluster().telemetry().metrics();
  m.counter("orchestrator/decisions").inc();
  m.counter("orchestrator/decisions/" + std::string(transport_name(d.transport))).inc();
  return d;
}

TransportDecision NetworkOrchestrator::decide_impl(const Container& src,
                                                   const Container& dst) const {
  TransportDecision d;
  d.same_host = src.host() == dst.host();

  // Isolation first: untrusted pairs keep the fully-isolated overlay path.
  if (!allow_trade_ || !trusted(src, dst)) {
    d.transport = Transport::tcp_overlay;
    d.reason = "no trust: full isolation via overlay";
    return d;
  }

  // Same host (containers, or processes inside the same VM): shared memory.
  if (d.same_host) {
    d.transport = Transport::shm;
    d.reason = "co-located: shared memory";
    return d;
  }

  const fabric::Host& sh = cluster_.cluster().host(src.host());
  const fabric::Host& dh = cluster_.cluster().host(dst.host());

  // The effective capability of each end is the static NIC mask folded with
  // the last-reported live health: a dead RDMA engine removes rdma from the
  // decision until telemetry reports recovery. Degradation (rate_fraction)
  // deliberately does not shift the decision — a slow NIC slows every
  // transport through it equally.
  const fabric::NicHealth& s_health = nic_health(src.host());
  const fabric::NicHealth& d_health = nic_health(dst.host());

  if (!s_health.link_up || !d_health.link_up) {
    // Nothing traverses a downed link; pick the transport that can ride out
    // the outage (kernel TCP retransmits) and let re-decision upgrade later.
    d.transport = Transport::tcp_host;
    d.reason = "NIC link down: TCP holds the connection through the outage";
    return d;
  }

  // VMs on the same physical machine (deployment case c with two VMs):
  // the paper defers the NetVM-style fast path to future work, so FreeFlow
  // still routes via the NIC — which the hairpin makes equivalent to the
  // inter-host decision below.
  if (sh.nic().capabilities().rdma && dh.nic().capabilities().rdma &&
      s_health.rdma_up && d_health.rdma_up) {
    d.transport = Transport::rdma;
    d.reason = "different hosts, RDMA-capable NICs";
    return d;
  }
  if (sh.nic().capabilities().dpdk && dh.nic().capabilities().dpdk &&
      s_health.dpdk_up && d_health.dpdk_up) {
    d.transport = Transport::dpdk;
    d.reason = "no RDMA; DPDK kernel bypass";
    return d;
  }
  d.transport = Transport::tcp_host;
  d.reason = "commodity NICs: agent-to-agent TCP";
  return d;
}

Result<TransportDecision> NetworkOrchestrator::decide(ContainerId src,
                                                      ContainerId dst) const {
  ContainerPtr s = cluster_.container(src);
  ContainerPtr d = cluster_.container(dst);
  if (s == nullptr || d == nullptr) return not_found("unknown container");
  return decide(*s, *d);
}

Result<NetworkOrchestrator::Location> NetworkOrchestrator::locate(ContainerId id) const {
  ContainerPtr c = cluster_.container(id);
  if (c == nullptr) return not_found("unknown container " + std::to_string(id));
  return Location{c->host(), c->ip(), c->state()};
}

Result<ContainerId> NetworkOrchestrator::resolve_ip(tcp::Ipv4Addr ip) const {
  ContainerPtr c = cluster_.container_by_ip(ip);
  if (c == nullptr) return not_found("no container with IP " + ip.to_string());
  return c->id();
}

void NetworkOrchestrator::query_location(ContainerId id,
                                         std::function<void(Result<Location>)> cb) const {
  auto& loop = cluster_.cluster().loop();
  const SimDuration rtt = cluster_.cluster().cost_model().orchestrator_rpc_ns;
  loop.schedule(rtt, [this, id, cb = std::move(cb)]() { cb(locate(id)); });
}

void NetworkOrchestrator::subscribe_moves(LocationFn fn) {
  move_subscribers_.push_back(std::move(fn));
}

// ---------------------------------------------------------- health state

void NetworkOrchestrator::update_nic_health(fabric::HostId host,
                                            const fabric::NicHealth& health) {
  const fabric::NicHealth prev = nic_health(host);  // copy before overwrite
  health_[host] = health;
  cluster_.cluster().telemetry().metrics().counter("orchestrator/health_updates").inc();
  // Diff subscribers (decision-cache flushes) run BEFORE the coarse health
  // subscribers: by the time anything re-decides, stale entries are gone.
  for (auto& fn : health_diff_subscribers_) fn(host, prev, health);
  notify_health(host);
}

const fabric::NicHealth& NetworkOrchestrator::nic_health(fabric::HostId host) const {
  static const fabric::NicHealth k_healthy{};
  auto it = health_.find(host);
  return it == health_.end() ? k_healthy : it->second;
}

void NetworkOrchestrator::subscribe_health(HealthFn fn) {
  health_subscribers_.push_back(std::move(fn));
}

void NetworkOrchestrator::subscribe_health_diff(HealthDiffFn fn) {
  health_diff_subscribers_.push_back(std::move(fn));
}

void NetworkOrchestrator::subscribe_lane_failures(LaneFailureFn fn) {
  lane_failure_subscribers_.push_back(std::move(fn));
}

void NetworkOrchestrator::report_lane_failure(fabric::HostId reporter,
                                              fabric::HostId peer, Transport transport) {
  ++lane_failure_reports_;
  cluster_.cluster().telemetry().metrics().counter("orchestrator/lane_failure_reports").inc();
  FF_LOG(info, "orch") << "lane failure report: host " << reporter << " -> host "
                       << peer << " over " << transport_name(transport);
  // Caches drop decisions riding the failed lane before anything re-decides.
  for (auto& fn : lane_failure_subscribers_) fn(reporter, peer, transport);
  // Both ends re-evaluate; decide() folds whatever telemetry already knows.
  notify_health(reporter);
  if (peer != reporter) notify_health(peer);
}

void NetworkOrchestrator::update_path_health(fabric::HostId a, fabric::HostId b,
                                             bool up) {
  const std::uint64_t key = path_key(a, b);
  const bool changed = up ? downed_paths_.erase(key) > 0
                          : downed_paths_.insert(key).second;
  if (!changed) return;
  cluster_.cluster().telemetry().metrics().counter("orchestrator/path_updates").inc();
  FF_LOG(info, "orch") << "fabric path host " << a << " <-> host " << b
                       << (up ? " healed" : " partitioned");
  // Snapshot-by-size like notify_health: a subscriber may subscribe more.
  const std::size_t n = path_subscribers_.size();
  for (std::size_t i = 0; i < n; ++i) path_subscribers_[i](a, b, up);
}

bool NetworkOrchestrator::path_up(fabric::HostId a, fabric::HostId b) const {
  return !downed_paths_.contains(path_key(a, b));
}

void NetworkOrchestrator::subscribe_path_partitions(PathFn fn) {
  path_subscribers_.push_back(std::move(fn));
}

void NetworkOrchestrator::notify_health(fabric::HostId host) {
  // Snapshot: a subscriber's re-decision may subscribe more (new agents).
  const std::size_t n = health_subscribers_.size();
  for (std::size_t i = 0; i < n; ++i) health_subscribers_[i](host);
}

}  // namespace freeflow::orch
