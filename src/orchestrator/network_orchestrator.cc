#include "orchestrator/network_orchestrator.h"

namespace freeflow::orch {

namespace {
std::uint64_t trust_key(TenantId a, TenantId b) noexcept {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}
}  // namespace

std::string_view transport_name(Transport t) noexcept {
  switch (t) {
    case Transport::shm: return "shm";
    case Transport::rdma: return "rdma";
    case Transport::dpdk: return "dpdk";
    case Transport::tcp_host: return "tcp-host";
    case Transport::tcp_overlay: return "tcp-overlay";
  }
  return "?";
}

NetworkOrchestrator::NetworkOrchestrator(ClusterOrchestrator& cluster_orch)
    : cluster_(cluster_orch) {
  cluster_.on_moved([this](const Container& c) {
    for (auto& fn : move_subscribers_) fn(c);
  });
}

void NetworkOrchestrator::set_tenant_trust(TenantId a, TenantId b, bool is_trusted) {
  if (is_trusted) {
    tenant_trust_.insert(trust_key(a, b));
  } else {
    tenant_trust_.erase(trust_key(a, b));
  }
}

bool NetworkOrchestrator::trusted(const Container& a, const Container& b) const {
  if (a.tenant() == b.tenant()) return true;
  return tenant_trust_.contains(trust_key(a.tenant(), b.tenant()));
}

fabric::HostId NetworkOrchestrator::physical_machine(fabric::HostId host) const {
  const fabric::Host& h = cluster_.cluster().host(host);
  return h.physical_machine().value_or(host);
}

TransportDecision NetworkOrchestrator::decide(const Container& src,
                                              const Container& dst) const {
  TransportDecision d;
  d.same_host = src.host() == dst.host();

  // Isolation first: untrusted pairs keep the fully-isolated overlay path.
  if (!allow_trade_ || !trusted(src, dst)) {
    d.transport = Transport::tcp_overlay;
    d.reason = "no trust: full isolation via overlay";
    return d;
  }

  // Same host (containers, or processes inside the same VM): shared memory.
  if (d.same_host) {
    d.transport = Transport::shm;
    d.reason = "co-located: shared memory";
    return d;
  }

  const fabric::Host& sh = cluster_.cluster().host(src.host());
  const fabric::Host& dh = cluster_.cluster().host(dst.host());

  // VMs on the same physical machine (deployment case c with two VMs):
  // the paper defers the NetVM-style fast path to future work, so FreeFlow
  // still routes via the NIC — which the hairpin makes equivalent to the
  // inter-host decision below.
  if (sh.nic().capabilities().rdma && dh.nic().capabilities().rdma) {
    d.transport = Transport::rdma;
    d.reason = "different hosts, RDMA-capable NICs";
    return d;
  }
  if (sh.nic().capabilities().dpdk && dh.nic().capabilities().dpdk) {
    d.transport = Transport::dpdk;
    d.reason = "no RDMA; DPDK kernel bypass";
    return d;
  }
  d.transport = Transport::tcp_host;
  d.reason = "commodity NICs: agent-to-agent TCP";
  return d;
}

Result<TransportDecision> NetworkOrchestrator::decide(ContainerId src,
                                                      ContainerId dst) const {
  ContainerPtr s = cluster_.container(src);
  ContainerPtr d = cluster_.container(dst);
  if (s == nullptr || d == nullptr) return not_found("unknown container");
  return decide(*s, *d);
}

Result<NetworkOrchestrator::Location> NetworkOrchestrator::locate(ContainerId id) const {
  ContainerPtr c = cluster_.container(id);
  if (c == nullptr) return not_found("unknown container " + std::to_string(id));
  return Location{c->host(), c->ip(), c->state()};
}

Result<ContainerId> NetworkOrchestrator::resolve_ip(tcp::Ipv4Addr ip) const {
  ContainerPtr c = cluster_.container_by_ip(ip);
  if (c == nullptr) return not_found("no container with IP " + ip.to_string());
  return c->id();
}

void NetworkOrchestrator::query_location(ContainerId id,
                                         std::function<void(Result<Location>)> cb) const {
  auto& loop = cluster_.cluster().loop();
  const SimDuration rtt = cluster_.cluster().cost_model().orchestrator_rpc_ns;
  loop.schedule(rtt, [this, id, cb = std::move(cb)]() { cb(locate(id)); });
}

void NetworkOrchestrator::subscribe_moves(LocationFn fn) {
  move_subscribers_.push_back(std::move(fn));
}

}  // namespace freeflow::orch
