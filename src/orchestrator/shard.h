// Sharded control plane: the scale-out front of the network orchestrator.
//
// The paper (§4.1) argues the centralized orchestrator is cheap because it
// is off the data path — true per packet, false per flow once every setup
// consults one decision service. This module partitions the control plane
// into N `OrchestratorShard`s by *host* (shard = host % N): each shard has
// its own RPC queue and serial service capacity on the simulation clock, so
// decision throughput scales with the shard count instead of serializing
// the cluster. A thin router fronts the shards; a query for (src, dst) is
// served by the home shard of the *origin host* (the agent always asks its
// own shard), which forwards to the peer's shard when dst lives elsewhere —
// one batched forward round per (RPC, peer shard), not one per decision.
//
// The hard part is invalidation. Every container carries a monotonically
// increasing *decision epoch*; any event that can change decisions touching
// it — migration, stop, a NIC-health transition on its host, an agent lane
// -failure report — bumps the epoch and pushes a *precise* flush to exactly
// the caches that registered interest in that container (the selectors keep
// per-container reverse indexes, so a flush drops exactly the affected
// (src, dst) entries). Flushes carry a transport drop-mask: an RDMA engine
// death drops only cached rdma decisions and leaves co-located shm pairs
// untouched; a recovery drops the downgraded decisions that can now be
// upgraded (see DESIGN.md §12 for the full fault-kind × flush-scope
// matrix). Decision replies carry the epochs they were served under, so a
// reply that raced a migration is rejected by the cache and re-queried
// instead of poisoning it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "orchestrator/network_orchestrator.h"
#include "sim/event_loop.h"
#include "telemetry/metrics.h"

namespace freeflow::orch {

/// Monotonic per-container decision version. Bumped on every event that can
/// change decisions involving the container; cached entries and in-flight
/// replies are stamped with it and rejected when they lag.
using DecisionEpoch = std::uint64_t;

/// Bit of `t` in a flush drop-mask.
[[nodiscard]] constexpr std::uint8_t transport_bit(Transport t) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(t));
}
inline constexpr std::uint8_t k_drop_none = 0;
inline constexpr std::uint8_t k_drop_all = 0x1F;  ///< all five transports

/// A decision cache that registered interest in containers (the per-agent
/// `TransportSelector`s). Flush pushes arrive through this interface.
class DecisionCacheClient {
 public:
  virtual ~DecisionCacheClient() = default;
  /// Precise invalidation push: drop cached entries involving `container`
  /// whose decision transport is in `drop_mask`; surviving entries are
  /// re-stamped with `epoch` (the event was proven not to affect them).
  virtual void on_flush(ContainerId container, DecisionEpoch epoch,
                        std::uint8_t drop_mask) = 0;
};

class ShardedControlPlane {
 public:
  struct DecideRequest {
    ContainerId src = 0;
    ContainerId dst = 0;
  };
  /// One answered decision. `error` carries negative answers (unknown
  /// container) so caches can negative-cache them; epochs are sampled at
  /// shard service time, NOT delivery time — the gap is exactly what the
  /// cache's epoch check closes.
  struct DecideReply {
    Status error;
    TransportDecision decision;
    DecisionEpoch src_epoch = 0;
    DecisionEpoch dst_epoch = 0;
  };
  using BatchFn = std::function<void(std::vector<DecideReply>)>;

  ShardedControlPlane(NetworkOrchestrator& orchestrator, int shards);
  ~ShardedControlPlane();

  ShardedControlPlane(const ShardedControlPlane&) = delete;
  ShardedControlPlane& operator=(const ShardedControlPlane&) = delete;

  /// One batched decide RPC from the agent on `origin` to its home shard.
  /// Replies arrive after wire latency + the shard's queue + service time
  /// (+ one forward round per distinct peer shard among the requests).
  /// Service answers from current truth; requests are not reordered.
  void decide_batch(fabric::HostId origin, std::vector<DecideRequest> requests,
                    BatchFn done);

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// The partition function. Host-granular so one agent talks to one shard.
  [[nodiscard]] int shard_of_host(fabric::HostId host) const noexcept {
    return static_cast<int>(host % shards_.size());
  }

  /// Current decision epoch of a container (0 until first bumped). Ground
  /// truth — caches consult it to validate replies and audit hits.
  [[nodiscard]] DecisionEpoch epoch(ContainerId container) const;

  // ---- interest registry (who holds entries involving a container) ------
  void register_interest(ContainerId container, DecisionCacheClient* cache);
  void drop_interest(ContainerId container, DecisionCacheClient* cache);
  /// Removes `cache` from every interest set (cache teardown).
  void detach(DecisionCacheClient* cache);

  /// Planned migration is starting for `container`: bump its epoch and push
  /// a full-mask flush NOW — before the first conduit pauses — so no
  /// selector serves a decision pinned to the source host mid-move. The
  /// move-completion subscription bumps again when the new location lands.
  void note_migration_started(ContainerId container) {
    bump_and_flush(container, k_drop_all);
  }

  // ---- introspection ----------------------------------------------------
  [[nodiscard]] std::uint64_t shard_rpcs() const noexcept { return rpcs_; }
  [[nodiscard]] std::uint64_t decisions_served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t cross_shard_forwards() const noexcept { return forwards_; }
  [[nodiscard]] std::uint64_t epoch_bumps() const noexcept { return bumps_; }
  [[nodiscard]] std::uint64_t flushes_pushed() const noexcept { return flushes_; }

  [[nodiscard]] NetworkOrchestrator& orchestrator() noexcept { return orch_; }

 private:
  /// One shard's queueing state: a serial service line on the sim clock.
  struct Shard {
    SimTime busy_until = 0;
  };

  [[nodiscard]] sim::EventLoop& loop();
  void bump_and_flush(ContainerId container, std::uint8_t drop_mask);
  /// Bumps every container on `host` (health events are host-granular).
  void flush_host(fabric::HostId host, std::uint8_t drop_mask);
  /// The invalidation matrix for NIC-health transitions (DESIGN.md §12).
  [[nodiscard]] static std::uint8_t health_drop_mask(
      const fabric::NicHealth& prev, const fabric::NicHealth& now) noexcept;

  NetworkOrchestrator& orch_;
  std::vector<Shard> shards_;
  std::unordered_map<ContainerId, DecisionEpoch> epochs_;
  /// container -> caches holding entries involving it. Small vectors: an
  /// entry's holders are the agents of the two endpoints' hosts.
  std::unordered_map<ContainerId, std::vector<DecisionCacheClient*>> holders_;

  std::uint64_t rpcs_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t forwards_ = 0;
  std::uint64_t bumps_ = 0;
  std::uint64_t flushes_ = 0;
  telemetry::Counter* ctr_rpcs_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_decisions_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_forwards_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_bumps_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_flushes_ = telemetry::Counter::discard();

  /// The orchestrator (and its subscriber lists) can outlive this plane;
  /// subscriptions and scheduled service events guard on this token.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace freeflow::orch
