#include "orchestrator/shard.h"

#include <algorithm>

#include "common/logging.h"

namespace freeflow::orch {

ShardedControlPlane::ShardedControlPlane(NetworkOrchestrator& orchestrator, int shards)
    : orch_(orchestrator), shards_(static_cast<std::size_t>(std::max(shards, 1))) {
  auto& metrics = orch_.cluster_orch().cluster().telemetry().metrics();
  ctr_rpcs_ = &metrics.counter("orch/shard_rpcs");
  ctr_decisions_ = &metrics.counter("orch/shard_decisions");
  ctr_forwards_ = &metrics.counter("orch/cross_shard_forwards");
  ctr_bumps_ = &metrics.counter("orch/decision_epoch_bumps");
  ctr_flushes_ = &metrics.counter("orch/cache_flushes_pushed");

  // Invalidation sources. These subscriptions are registered at
  // construction — before any re-decision handler (FreeFlow subscribes its
  // own health/move handlers after constructing the plane) — so caches are
  // flushed before the first re-decide can consult them.
  std::weak_ptr<bool> alive = alive_;
  orch_.subscribe_health_diff([this, alive](fabric::HostId host,
                                            const fabric::NicHealth& prev,
                                            const fabric::NicHealth& now) {
    if (alive.expired()) return;
    const std::uint8_t mask = health_drop_mask(prev, now);
    if (mask != k_drop_none) flush_host(host, mask);
  });
  orch_.subscribe_lane_failures([this, alive](fabric::HostId reporter,
                                              fabric::HostId peer, Transport t) {
    if (alive.expired()) return;
    // The report does not change orchestrator truth (telemetry may still
    // say healthy), but cached decisions over the reported transport must
    // re-consult so the next decide folds whatever truth exists by then.
    flush_host(reporter, transport_bit(t));
    if (peer != reporter) flush_host(peer, transport_bit(t));
  });
  orch_.subscribe_trust_changes([this, alive](TenantId a, TenantId b, bool now_trusted) {
    if (alive.expired()) return;
    // A revoke falsifies every cached non-overlay decision touching either
    // tenant (the pair must drop to the isolated overlay NOW); a grant only
    // falsifies the overlay decisions that can upgrade. Flushing both
    // tenants' containers over-covers same-tenant pairs, but those re-decide
    // to the same answer — correctness needs the cross-tenant entries gone.
    const std::uint8_t mask = now_trusted
                                  ? transport_bit(Transport::tcp_overlay)
                                  : static_cast<std::uint8_t>(
                                        k_drop_all & ~transport_bit(Transport::tcp_overlay));
    for (const auto& c : orch_.cluster_orch().containers_of_tenant(a)) {
      bump_and_flush(c->id(), mask);
    }
    if (b != a) {
      for (const auto& c : orch_.cluster_orch().containers_of_tenant(b)) {
        bump_and_flush(c->id(), mask);
      }
    }
  });
  orch_.subscribe_moves([this, alive](const Container& moved) {
    if (alive.expired()) return;
    // A move changes the host underneath every decision: drop everything.
    bump_and_flush(moved.id(), k_drop_all);
  });
  orch_.cluster_orch().on_stopped([this, alive](const Container& stopped) {
    if (alive.expired()) return;
    bump_and_flush(stopped.id(), k_drop_all);
  });
}

ShardedControlPlane::~ShardedControlPlane() { *alive_ = false; }

sim::EventLoop& ShardedControlPlane::loop() {
  return orch_.cluster_orch().cluster().loop();
}

DecisionEpoch ShardedControlPlane::epoch(ContainerId container) const {
  auto it = epochs_.find(container);
  return it == epochs_.end() ? 0 : it->second;
}

void ShardedControlPlane::decide_batch(fabric::HostId origin,
                                       std::vector<DecideRequest> requests,
                                       BatchFn done) {
  const auto& cm = orch_.cluster_orch().cluster().cost_model();
  const int home = shard_of_host(origin);
  Shard& shard = shards_[static_cast<std::size_t>(home)];
  ++rpcs_;
  ctr_rpcs_->inc();

  // Service cost, computed at enqueue so later arrivals queue behind it:
  // a fixed per-RPC overhead, a marginal cost per decision, and one
  // forward round per *distinct* peer shard referenced by the batch (the
  // shard coalesces its cross-shard lookups, mirroring the library's own
  // miss batching one level up).
  SimDuration cost = cm.orchestrator_batch_fixed_ns +
                     static_cast<SimDuration>(requests.size()) *
                         cm.orchestrator_decide_service_ns;
  std::uint32_t peer_shards = 0;  // bitset; shard counts are small (<= 32)
  std::uint64_t forwarded = 0;
  for (const auto& r : requests) {
    ContainerPtr dst = orch_.cluster_orch().container(r.dst);
    if (dst == nullptr) continue;
    const int peer = shard_of_host(dst->host());
    if (peer == home) continue;
    ++forwarded;
    peer_shards |= 1u << (static_cast<unsigned>(peer) % 32u);
  }
  for (std::uint32_t bits = peer_shards; bits != 0; bits &= bits - 1) {
    cost += cm.cross_shard_forward_ns;
  }
  forwards_ += forwarded;
  ctr_forwards_->inc(forwarded);
  served_ += requests.size();
  ctr_decisions_->inc(requests.size());

  const SimDuration one_way = cm.orchestrator_rpc_ns / 2;
  const SimTime arrival = loop().now() + one_way;
  const SimTime service_done = std::max(arrival, shard.busy_until) + cost;
  shard.busy_until = service_done;

  std::weak_ptr<bool> alive = alive_;
  loop().schedule_at(service_done, [this, alive, one_way,
                                    requests = std::move(requests),
                                    done = std::move(done)]() mutable {
    if (alive.expired()) return;
    // Service moment: answer from current truth, stamped with current
    // epochs. Anything that changes between now and delivery bumps the
    // epoch past these stamps and the client rejects the reply.
    std::vector<DecideReply> replies;
    replies.reserve(requests.size());
    for (const auto& r : requests) {
      DecideReply reply;
      auto d = orch_.decide(r.src, r.dst);
      if (d.is_ok()) {
        reply.decision = std::move(d.value());
      } else {
        reply.error = d.status();
      }
      reply.src_epoch = epoch(r.src);
      reply.dst_epoch = epoch(r.dst);
      replies.push_back(std::move(reply));
    }
    loop().schedule(one_way, [done = std::move(done),
                              replies = std::move(replies)]() mutable {
      done(std::move(replies));
    });
  });
}

// ------------------------------------------------------------ invalidation

std::uint8_t ShardedControlPlane::health_drop_mask(
    const fabric::NicHealth& prev, const fabric::NicHealth& now) noexcept {
  // Link transitions reroute everything through the host either way.
  if (prev.link_up != now.link_up) return k_drop_all;
  std::uint8_t mask = k_drop_none;
  // A capability death invalidates decisions *using* it; a recovery
  // invalidates the downgraded decisions that can now be upgraded. Entries
  // outside the mask (co-located shm, untrusted overlay) are provably
  // unaffected and survive with a re-stamped epoch.
  if (prev.rdma_up && !now.rdma_up) mask |= transport_bit(Transport::rdma);
  if (!prev.rdma_up && now.rdma_up) {
    mask |= transport_bit(Transport::dpdk) | transport_bit(Transport::tcp_host);
  }
  if (prev.dpdk_up && !now.dpdk_up) mask |= transport_bit(Transport::dpdk);
  if (!prev.dpdk_up && now.dpdk_up) mask |= transport_bit(Transport::tcp_host);
  // rate_fraction does not shift decisions (a slow NIC slows every
  // transport equally), so degradation flushes nothing.
  return mask;
}

void ShardedControlPlane::flush_host(fabric::HostId host, std::uint8_t drop_mask) {
  for (const auto& c : orch_.cluster_orch().containers_on(host)) {
    bump_and_flush(c->id(), drop_mask);
  }
}

void ShardedControlPlane::bump_and_flush(ContainerId container,
                                         std::uint8_t drop_mask) {
  const DecisionEpoch e = ++epochs_[container];
  ++bumps_;
  ctr_bumps_->inc();
  auto it = holders_.find(container);
  if (it == holders_.end()) return;
  // Snapshot: a flushed cache whose last entry for the container dies will
  // drop_interest() reentrantly.
  std::vector<DecisionCacheClient*> snapshot = it->second;
  flushes_ += snapshot.size();
  ctr_flushes_->inc(snapshot.size());
  for (DecisionCacheClient* cache : snapshot) {
    cache->on_flush(container, e, drop_mask);
  }
}

// -------------------------------------------------------- interest registry

void ShardedControlPlane::register_interest(ContainerId container,
                                            DecisionCacheClient* cache) {
  auto& list = holders_[container];
  if (std::find(list.begin(), list.end(), cache) == list.end()) {
    list.push_back(cache);
  }
}

void ShardedControlPlane::drop_interest(ContainerId container,
                                        DecisionCacheClient* cache) {
  auto it = holders_.find(container);
  if (it == holders_.end()) return;
  std::erase(it->second, cache);
  if (it->second.empty()) holders_.erase(it);
}

void ShardedControlPlane::detach(DecisionCacheClient* cache) {
  for (auto it = holders_.begin(); it != holders_.end();) {
    std::erase(it->second, cache);
    it = it->second.empty() ? holders_.erase(it) : std::next(it);
  }
}

}  // namespace freeflow::orch
