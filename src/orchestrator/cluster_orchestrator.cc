#include "orchestrator/cluster_orchestrator.h"

#include <algorithm>

#include "common/logging.h"

namespace freeflow::orch {

ClusterOrchestrator::ClusterOrchestrator(fabric::Cluster& cluster,
                                         overlay::OverlayNetwork& overlay)
    : cluster_(cluster), overlay_(overlay) {}

fabric::HostId ClusterOrchestrator::pick_host() const {
  FF_CHECK(cluster_.host_count() > 0);
  std::vector<std::size_t> load(cluster_.host_count(), 0);
  for (const auto& [id, c] : containers_) {
    if (c->state() == ContainerState::running) ++load[c->host()];
  }
  std::size_t best = 0;
  for (std::size_t h = 1; h < load.size(); ++h) {
    const bool better = policy_ == PlacementPolicy::spread ? load[h] < load[best]
                                                           : load[h] > load[best];
    if (better) best = h;
  }
  return static_cast<fabric::HostId>(best);
}

Result<ContainerPtr> ClusterOrchestrator::deploy(ContainerSpec spec) {
  if (spec.pinned_host.has_value() && *spec.pinned_host >= cluster_.host_count()) {
    return invalid_argument("pinned host out of range");
  }
  const fabric::HostId host = spec.pinned_host.value_or(pick_host());
  overlay_.attach_host(host);

  auto requested_ip = spec.requested_ip;
  auto container = std::make_shared<Container>(next_id_++, std::move(spec), host, tcp::Ipv4Addr{});
  auto ip = overlay_.add_container(host, &container->account(), requested_ip);
  if (!ip.is_ok()) return ip.status();
  container->set_ip(*ip);
  container->set_state(ContainerState::running);
  containers_[container->id()] = container;
  FF_LOG(info, "orch") << "deployed " << container->name() << " (" << ip->to_string()
                       << ") on host " << host;
  for (auto& fn : started_) fn(*container);
  return container;
}

Status ClusterOrchestrator::migrate(ContainerId id, fabric::HostId dst,
                                    SimDuration downtime) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return not_found("no container " + std::to_string(id));
  ContainerPtr c = it->second;
  if (c->state() != ContainerState::running) {
    return failed_precondition("container not running");
  }
  if (dst >= cluster_.host_count()) return invalid_argument("destination host out of range");
  if (dst == c->host()) return ok_status();

  overlay_.attach_host(dst);
  c->set_state(ContainerState::migrating);
  for (auto& fn : migration_started_) fn(*c);
  cluster_.loop().schedule(downtime, [this, c, dst]() {
    const Status moved = overlay_.move_container(c->ip(), dst, &c->account());
    FF_CHECK(moved.is_ok());
    c->set_host(dst);
    c->set_state(ContainerState::running);
    FF_LOG(info, "orch") << "migrated " << c->name() << " to host " << dst;
    for (auto& fn : moved_) fn(*c);
  });
  return ok_status();
}

Status ClusterOrchestrator::stop(ContainerId id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return not_found("no container " + std::to_string(id));
  ContainerPtr c = it->second;
  if (c->state() == ContainerState::stopped) return ok_status();
  c->set_state(ContainerState::stopped);
  FF_RETURN_IF_ERROR(overlay_.remove_container(c->ip()));
  for (auto& fn : stopped_) fn(*c);
  return ok_status();
}

ContainerPtr ClusterOrchestrator::container(ContainerId id) const {
  auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : it->second;
}

ContainerPtr ClusterOrchestrator::container_by_name(const std::string& name) const {
  for (const auto& [id, c] : containers_) {
    if (c->name() == name) return c;
  }
  return nullptr;
}

ContainerPtr ClusterOrchestrator::container_by_ip(tcp::Ipv4Addr ip) const {
  for (const auto& [id, c] : containers_) {
    if (c->ip() == ip && c->state() != ContainerState::stopped) return c;
  }
  return nullptr;
}

std::size_t ClusterOrchestrator::running_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(containers_.begin(), containers_.end(), [](const auto& kv) {
        return kv.second->state() == ContainerState::running;
      }));
}

std::vector<ContainerPtr> ClusterOrchestrator::containers_on(fabric::HostId host) const {
  std::vector<ContainerPtr> out;
  for (const auto& [id, c] : containers_) {
    if (c->host() == host && c->state() == ContainerState::running) out.push_back(c);
  }
  return out;
}

std::vector<ContainerPtr> ClusterOrchestrator::containers_of_tenant(TenantId tenant) const {
  std::vector<ContainerPtr> out;
  for (const auto& [id, c] : containers_) {
    if (c->tenant() == tenant && c->state() == ContainerState::running) out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const ContainerPtr& a, const ContainerPtr& b) { return a->id() < b->id(); });
  return out;
}

}  // namespace freeflow::orch
