// Container is header-only; this TU anchors the library target.
#include "orchestrator/container.h"
