// Containers as the cluster orchestrator sees them: a named, tenant-owned
// unit placed on a host, with an overlay IP that survives migration and a
// CPU usage account its networking work bills to.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "fabric/packet.h"
#include "sim/resource.h"
#include "tcpstack/ip.h"

namespace freeflow::orch {

using ContainerId = std::uint32_t;
using TenantId = std::uint32_t;

enum class ContainerState : std::uint8_t { pending, running, migrating, stopped };

struct ContainerSpec {
  std::string name;
  TenantId tenant = 0;
  /// Pin to a host; otherwise the placement policy chooses.
  std::optional<fabric::HostId> pinned_host;
  /// Request a specific overlay IP; otherwise IPAM assigns.
  std::optional<tcp::Ipv4Addr> requested_ip;
};

class Container {
 public:
  Container(ContainerId id, ContainerSpec spec, fabric::HostId host, tcp::Ipv4Addr ip)
      : id_(id),
        spec_(std::move(spec)),
        host_(host),
        ip_(ip),
        account_(spec_.name) {}

  [[nodiscard]] ContainerId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] TenantId tenant() const noexcept { return spec_.tenant; }
  [[nodiscard]] fabric::HostId host() const noexcept { return host_; }
  [[nodiscard]] tcp::Ipv4Addr ip() const noexcept { return ip_; }
  [[nodiscard]] ContainerState state() const noexcept { return state_; }
  [[nodiscard]] sim::UsageAccount& account() noexcept { return account_; }

  // Orchestrator-internal.
  void set_host(fabric::HostId host) noexcept { host_ = host; }
  void set_state(ContainerState s) noexcept { state_ = s; }
  void set_ip(tcp::Ipv4Addr ip) noexcept { ip_ = ip; }

 private:
  ContainerId id_;
  ContainerSpec spec_;
  fabric::HostId host_;
  tcp::Ipv4Addr ip_;
  ContainerState state_ = ContainerState::pending;
  sim::UsageAccount account_;
};

using ContainerPtr = std::shared_ptr<Container>;

}  // namespace freeflow::orch
