// Mesos/Kubernetes-style cluster orchestrator: schedules containers onto
// hosts, drives their lifecycle (including live migration) and notifies
// subscribers — the paper's key observation is that this centrally-managed
// deployment gives FreeFlow its location feed for free.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fabric/cluster.h"
#include "orchestrator/container.h"
#include "overlay/overlay.h"

namespace freeflow::orch {

enum class PlacementPolicy : std::uint8_t {
  spread,   ///< fewest containers first (default)
  binpack,  ///< most containers first
};

class ClusterOrchestrator {
 public:
  /// Fired after a container starts, moves, or stops.
  using EventFn = std::function<void(const Container&)>;

  ClusterOrchestrator(fabric::Cluster& cluster, overlay::OverlayNetwork& overlay);

  ClusterOrchestrator(const ClusterOrchestrator&) = delete;
  ClusterOrchestrator& operator=(const ClusterOrchestrator&) = delete;

  void set_placement_policy(PlacementPolicy p) noexcept { policy_ = p; }

  /// Schedules and starts a container; allocates its overlay IP.
  Result<ContainerPtr> deploy(ContainerSpec spec);

  /// Live-migrates a container; the overlay IP is preserved. Completes
  /// after `downtime` of simulated migration blackout, then notifies.
  Status migrate(ContainerId id, fabric::HostId dst, SimDuration downtime = 50 * k_millisecond);

  Status stop(ContainerId id);

  [[nodiscard]] ContainerPtr container(ContainerId id) const;
  [[nodiscard]] ContainerPtr container_by_name(const std::string& name) const;
  [[nodiscard]] ContainerPtr container_by_ip(tcp::Ipv4Addr ip) const;
  [[nodiscard]] std::size_t running_count() const noexcept;
  [[nodiscard]] std::vector<ContainerPtr> containers_on(fabric::HostId host) const;
  /// Running containers of one tenant, sorted by id (deterministic order for
  /// tenant-scoped cache flushes).
  [[nodiscard]] std::vector<ContainerPtr> containers_of_tenant(TenantId tenant) const;

  void on_started(EventFn fn) { started_.push_back(std::move(fn)); }
  void on_moved(EventFn fn) { moved_.push_back(std::move(fn)); }
  void on_stopped(EventFn fn) { stopped_.push_back(std::move(fn)); }
  /// Fired when a migration begins (state just became `migrating`), before
  /// any downtime elapses — the hook that lets the network layer freeze
  /// conduits so no bytes die in a channel during the move.
  void on_migration_started(EventFn fn) { migration_started_.push_back(std::move(fn)); }

  [[nodiscard]] fabric::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] overlay::OverlayNetwork& overlay() noexcept { return overlay_; }

 private:
  fabric::HostId pick_host() const;

  fabric::Cluster& cluster_;
  overlay::OverlayNetwork& overlay_;
  PlacementPolicy policy_ = PlacementPolicy::spread;
  ContainerId next_id_ = 1;
  std::unordered_map<ContainerId, ContainerPtr> containers_;
  std::vector<EventFn> started_;
  std::vector<EventFn> moved_;
  std::vector<EventFn> stopped_;
  std::vector<EventFn> migration_started_;
};

}  // namespace freeflow::orch
