// FreeFlow's network orchestrator: the (conceptually) centralized
// control-plane extension the paper adds on top of the cluster
// orchestrator. It maintains three kinds of global state — container
// locations (fed by the cluster orchestrator and, for containers in VMs,
// the fabric controller), assigned IPs, and host NIC capabilities — and
// answers the one question the whole system turns on: *which data-plane
// mechanism should this pair of containers use?*
#pragma once

#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "orchestrator/cluster_orchestrator.h"

namespace freeflow::orch {

/// The data-plane mechanisms FreeFlow integrates (paper §4.2).
enum class Transport : std::uint8_t {
  shm,          ///< same host (or same VM): shared-memory channel
  rdma,         ///< different hosts, both NICs RDMA-capable
  dpdk,         ///< different hosts, kernel bypass without RDMA
  tcp_host,     ///< agent-to-agent kernel TCP (capable-NIC-free fallback)
  tcp_overlay,  ///< plain overlay networking (no trust: full isolation)
};

std::string_view transport_name(Transport t) noexcept;

struct TransportDecision {
  Transport transport = Transport::tcp_overlay;
  bool same_host = false;
  std::string reason;
};

class NetworkOrchestrator {
 public:
  using LocationFn = std::function<void(const Container&)>;
  using HealthFn = std::function<void(fabric::HostId)>;
  /// Health transition with before/after state — precise invalidation needs
  /// the *diff* (which capability changed, in which direction), not just
  /// the fact that something changed.
  using HealthDiffFn = std::function<void(
      fabric::HostId, const fabric::NicHealth& prev, const fabric::NicHealth& now)>;
  using LaneFailureFn =
      std::function<void(fabric::HostId reporter, fabric::HostId peer, Transport)>;
  /// Inter-host path state change: (a, b, up). Both NICs may be healthy.
  using PathFn = std::function<void(fabric::HostId, fabric::HostId, bool)>;
  /// Trust transition between two tenants: (a, b, now_trusted). Fired only
  /// on actual grant/revoke transitions, not redundant set_tenant_trust calls.
  using TrustFn = std::function<void(TenantId, TenantId, bool)>;

  explicit NetworkOrchestrator(ClusterOrchestrator& cluster_orch);

  NetworkOrchestrator(const NetworkOrchestrator&) = delete;
  NetworkOrchestrator& operator=(const NetworkOrchestrator&) = delete;

  // ---- trust management -------------------------------------------------
  /// Containers of the same tenant trust each other by default; explicit
  /// cross-tenant trust can be granted (e.g. a shared data-plane service).
  void set_tenant_trust(TenantId a, TenantId b, bool trusted);
  [[nodiscard]] bool trusted(const Container& a, const Container& b) const;

  /// Fired on every effective trust grant/revoke — the invalidation source
  /// that lets decision caches drop entries the trust change falsified (a
  /// revoked pair must fall back to the isolated overlay immediately, not
  /// when a cached shm/rdma decision happens to age out).
  void subscribe_trust_changes(TrustFn fn);

  /// Globally disable isolation-trading (forces tcp_overlay everywhere).
  void set_allow_isolation_trade(bool allow) noexcept { allow_trade_ = allow; }

  // ---- the decision function (paper Table 1) ----------------------------
  [[nodiscard]] Result<TransportDecision> decide(ContainerId src, ContainerId dst) const;
  [[nodiscard]] TransportDecision decide(const Container& src, const Container& dst) const;

  // ---- location queries (what the network library pulls) ---------------
  struct Location {
    fabric::HostId host;
    tcp::Ipv4Addr ip;
    ContainerState state;
  };
  /// Synchronous lookup of current truth (the orchestrator's view).
  [[nodiscard]] Result<Location> locate(ContainerId id) const;
  [[nodiscard]] Result<ContainerId> resolve_ip(tcp::Ipv4Addr ip) const;

  /// RPC-style query: the answer arrives after the control-plane RTT, as
  /// it would for a library polling a remote orchestrator.
  void query_location(ContainerId id, std::function<void(Result<Location>)> cb) const;

  /// Location-change subscription (invalidates library caches, re-binds
  /// channels after migration).
  void subscribe_moves(LocationFn fn);

  // ---- live health state (fault tolerance) ------------------------------
  /// Telemetry ingest: the fabric's monitoring (modeled by the fault
  /// injector) reports a host NIC's live health. decide() folds this over
  /// the static capability mask, and every health subscriber is notified so
  /// affected agents can re-decide their conduits.
  void update_nic_health(fabric::HostId host, const fabric::NicHealth& health);
  [[nodiscard]] const fabric::NicHealth& nic_health(fabric::HostId host) const;

  /// Re-decision callback: fired with the host whose health state changed.
  void subscribe_health(HealthFn fn);

  /// Cache-invalidation callback: fired by update_nic_health with the old
  /// and new health, BEFORE the coarse subscribe_health callbacks — so
  /// decision caches flush stale entries before any re-decision consults
  /// them (the stale-serve window the sharded control plane closes).
  void subscribe_health_diff(HealthDiffFn fn);

  /// Fired by report_lane_failure (before its health notifications) with
  /// the reported transport, so caches can flush exactly the decisions
  /// riding the failed lane.
  void subscribe_lane_failures(LaneFailureFn fn);

  /// Agent-side failure report (missed heartbeats, send errors): converges
  /// faster than telemetry when the fault is on the reporting path. The
  /// report does not overwrite telemetry (a healthy peer must not be exiled
  /// by a confused reporter) — it re-fires the health subscribers for both
  /// ends so they re-evaluate against current truth.
  void report_lane_failure(fabric::HostId reporter, fabric::HostId peer,
                           Transport transport);
  [[nodiscard]] std::uint64_t lane_failure_reports() const noexcept {
    return lane_failure_reports_;
  }

  // ---- inter-host path health (path_partition faults) -------------------
  /// Telemetry ingest for a fabric path partition between two hosts whose
  /// NICs are individually healthy. Deliberately NOT folded into decide():
  /// no inter-host transport survives a severed fabric path, so shifting
  /// the transport cannot heal the pair — migrating one endpoint can, which
  /// is why this feeds the migration coordinator instead of re-decision.
  void update_path_health(fabric::HostId a, fabric::HostId b, bool up);
  [[nodiscard]] bool path_up(fabric::HostId a, fabric::HostId b) const;
  /// Fired on every update_path_health transition (down and heal).
  void subscribe_path_partitions(PathFn fn);

  [[nodiscard]] ClusterOrchestrator& cluster_orch() noexcept { return cluster_; }

  /// Effective physical machine of a host: itself, or the machine under a
  /// VM host (fabric-controller knowledge, deployment cases c/d).
  [[nodiscard]] fabric::HostId physical_machine(fabric::HostId host) const;

 private:
  [[nodiscard]] TransportDecision decide_impl(const Container& src,
                                              const Container& dst) const;
  void notify_health(fabric::HostId host);

  ClusterOrchestrator& cluster_;
  bool allow_trade_ = true;
  std::unordered_set<std::uint64_t> tenant_trust_;
  std::vector<TrustFn> trust_subscribers_;
  std::vector<LocationFn> move_subscribers_;
  std::vector<HealthFn> health_subscribers_;
  std::vector<HealthDiffFn> health_diff_subscribers_;
  std::vector<LaneFailureFn> lane_failure_subscribers_;
  /// Last reported NIC health per host; absent means healthy.
  std::unordered_map<fabric::HostId, fabric::NicHealth> health_;
  std::vector<PathFn> path_subscribers_;
  /// Severed inter-host paths, keyed min(a,b)<<32 | max(a,b).
  std::unordered_set<std::uint64_t> downed_paths_;
  std::uint64_t lane_failure_reports_ = 0;
};

}  // namespace freeflow::orch
