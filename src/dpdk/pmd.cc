#include "dpdk/pmd.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"

namespace freeflow::dpdk {

DpdkPort::DpdkPort(fabric::Host& host)
    : host_(host), pmd_core_(host.loop(), host.name() + "/pmd", host.cost_model().core_rate, 1) {
  host_.nic().set_rx_handler(fabric::PacketKind::dpdk_frame,
                             [this](fabric::PacketPtr p) { on_frame(std::move(p)); });
}

void DpdkPort::start() {
  if (running_) return;
  FF_CHECK(host_.nic().capabilities().dpdk);
  running_ = true;
  started_at_ = host_.loop().now();
}

void DpdkPort::stop() {
  if (!running_) return;
  spin_accum_ns_ += static_cast<double>(host_.loop().now() - started_at_);
  running_ = false;
}

double DpdkPort::spin_core_busy_ns() const noexcept {
  double total = spin_accum_ns_;
  if (running_) total += static_cast<double>(host_.loop().now() - started_at_);
  return total;
}

Status DpdkPort::send(fabric::HostId dst, Buffer message, std::uint32_t tenant) {
  if (!running_) return failed_precondition("PMD not running");
  tx_queue_.push_back(TxMessage{dst, std::move(message), tenant});
  pump_tx();
  return ok_status();
}

void DpdkPort::pump_tx() {
  if (tx_active_ || tx_queue_.empty()) return;
  tx_active_ = true;
  TxMessage next = std::move(tx_queue_.front());
  tx_queue_.pop_front();

  const std::uint64_t msg_id = next_msg_id_++;
  stream_frames(std::make_shared<Buffer>(std::move(next.data)), msg_id, next.dst,
                next.tenant, 0);
}

// One burst frame per call; the PMD-core completion re-invokes for the next
// offset. The pending event holds the port, the frame, and the source
// buffer — no callback ever owns itself (teardown protocol).
void DpdkPort::stream_frames(const std::shared_ptr<Buffer>& msg,
                             std::uint64_t msg_id, fabric::HostId dst,
                             std::uint32_t tenant, std::uint32_t offset) {
  const auto total = static_cast<std::uint32_t>(msg->size());
  const std::uint32_t n = total == 0 ? 0 : std::min(k_frame_payload, total - offset);
  auto frame = acquire_frame();
  frame->msg_id = msg_id;
  frame->total_len = total;
  frame->offset = offset;
  frame->last = offset + n >= total;
  frame->tenant = tenant;
  if (n > 0) frame->payload = Buffer(msg->data() + offset, n);

  const auto& m = host_.cost_model();
  pmd_core_.submit(m.dpdk_pkt_cost(n), [this, frame, msg, dst]() {
    auto packet = fabric::acquire_packet();
    packet->dst_host = dst;
    packet->wire_bytes = static_cast<std::uint32_t>(frame->payload.size()) + k_frame_header;
    packet->kind = fabric::PacketKind::dpdk_frame;
    packet->tenant = frame->tenant;
    const bool more = !frame->last;
    const std::uint64_t id = frame->msg_id;
    const std::uint32_t cls = frame->tenant;
    const auto next = frame->offset + static_cast<std::uint32_t>(frame->payload.size());
    packet->body = frame;
    host_.nic().send(std::move(packet));
    if (more) {
      stream_frames(msg, id, dst, cls, next);
    } else {
      tx_active_ = false;
      if (tx_queue_.size() < 32 && on_tx_space_) on_tx_space_();
      pump_tx();
    }
  });
}

void DpdkPort::on_frame(fabric::PacketPtr packet) {
  if (!running_) return;  // frames hitting a stopped PMD are lost
  auto frame = fabric::body_as<DpdkFrame>(packet);
  const fabric::HostId src = packet->src_host;
  const auto& m = host_.cost_model();

  // Frames wait (on average half a poll interval) for the next rx_burst,
  // then cost PMD processing.
  host_.loop().schedule(m.dpdk_poll_gap_ns / 2, [this, frame, src, &m]() {
    pmd_core_.submit(
        m.dpdk_pkt_cost(static_cast<std::uint32_t>(frame->payload.size())),
        [this, frame, src]() {
          auto& slot = rx_[{src, frame->msg_id}];
          if (slot.data.size() != frame->total_len) slot.data.resize(frame->total_len);
          if (!frame->payload.empty()) {
            std::memcpy(slot.data.data() + frame->offset, frame->payload.data(),
                        frame->payload.size());
          }
          slot.received += static_cast<std::uint32_t>(frame->payload.size());
          if (frame->last) {
            Buffer out = std::move(slot.data);
            rx_.erase({src, frame->msg_id});
            ++delivered_;
            if (on_message_) on_message_(src, std::move(out));
          }
        });
  });
}

}  // namespace freeflow::dpdk
