// DPDK-style poll-mode driver port: a userspace packet path that bypasses
// the kernel by dedicating ("pinning") one host core that spins polling the
// NIC queues. Per-packet cost is far below the kernel stack's, at the price
// of one core burned at 100 % whether or not traffic flows — the
// CPU/latency trade FreeFlow's orchestrator weighs when a host NIC lacks
// RDMA support but supports DPDK.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "common/slab_pool.h"
#include "common/status.h"
#include "fabric/host.h"
#include "fabric/packet.h"
#include "sim/resource.h"

namespace freeflow::dpdk {

struct DpdkFrame final : fabric::PacketBody {
  std::uint64_t msg_id = 0;
  std::uint32_t total_len = 0;
  std::uint32_t offset = 0;
  bool last = false;
  std::uint32_t tenant = 0;  ///< NIC scheduling class of the owning flow
  Buffer payload;
};

/// Acquires a fresh DpdkFrame from the process-wide slab pool.
inline std::shared_ptr<DpdkFrame> acquire_frame() {
  static common::SlabPool<DpdkFrame> pool;
  return pool.make();
}

class DpdkPort {
 public:
  using MessageFn = std::function<void(fabric::HostId src, Buffer&&)>;

  explicit DpdkPort(fabric::Host& host);

  DpdkPort(const DpdkPort&) = delete;
  DpdkPort& operator=(const DpdkPort&) = delete;

  /// Starts the PMD: the pinned core spins from now on.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Sends a message (chunked at the DPDK burst/frame size) to the peer
  /// port on `dst`. Fails if the port is not running or the NIC lacks DPDK.
  /// `tenant` classifies the frames for the NIC's per-tenant scheduler.
  Status send(fabric::HostId dst, Buffer message, std::uint32_t tenant = 0);

  void set_on_message(MessageFn cb) { on_message_ = std::move(cb); }

  /// Core-seconds burned by the pinned core since start (always wall time
  /// while running: a PMD core spins even when idle).
  [[nodiscard]] double spin_core_busy_ns() const noexcept;

  /// Actual packet-processing work done by the PMD (for efficiency stats).
  [[nodiscard]] sim::Resource& pmd_core() noexcept { return pmd_core_; }

  [[nodiscard]] std::uint64_t messages_delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::size_t tx_queue_depth() const noexcept { return tx_queue_.size(); }
  /// Fires when the tx queue drains below the notification threshold.
  void set_on_tx_space(std::function<void()> cb) { on_tx_space_ = std::move(cb); }

 private:
  void on_frame(fabric::PacketPtr packet);

  fabric::Host& host_;
  sim::Resource pmd_core_;
  bool running_ = false;
  SimTime started_at_ = 0;
  double spin_accum_ns_ = 0;
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t delivered_ = 0;
  bool tx_active_ = false;
  struct TxMessage {
    fabric::HostId dst = fabric::k_invalid_host;
    Buffer data;
    std::uint32_t tenant = 0;
  };
  std::deque<TxMessage> tx_queue_;
  MessageFn on_message_;
  std::function<void()> on_tx_space_;

  struct Reassembly {
    Buffer data;
    std::uint32_t received = 0;
  };
  std::map<std::pair<fabric::HostId, std::uint64_t>, Reassembly> rx_;

  void pump_tx();
  void stream_frames(const std::shared_ptr<Buffer>& msg, std::uint64_t msg_id,
                     fabric::HostId dst, std::uint32_t tenant, std::uint32_t offset);

  static constexpr std::uint32_t k_frame_payload = 4096;  // burst unit
  static constexpr std::uint32_t k_frame_header = 42;
};

}  // namespace freeflow::dpdk
