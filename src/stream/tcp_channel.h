// TcpFallbackChannel: an agent::Channel carried by one mini-TCP overlay
// connection. This is the stream adapter's "always works" transport — the
// path unmodified socket workloads ride today — wrapped in the channel
// interface so a conduit can splice between it and a per-stream RC QP
// without the application noticing (TSoR's fallback leg).
//
// Records are framed with a 4-byte little-endian length prefix, the same
// scheme the agents' TcpTrunk uses, so one conduit message maps to exactly
// one framed record regardless of how the byte stream is segmented.
#pragma once

#include <deque>
#include <memory>

#include "agent/channel.h"
#include "tcpstack/connection.h"

namespace freeflow::stream {

class TcpFallbackChannel final
    : public agent::Channel,
      public std::enable_shared_from_this<TcpFallbackChannel> {
 public:
  /// Wraps an established (or establishing) connection and wires its
  /// callbacks weakly — the channel owns the wiring, never vice versa.
  static std::shared_ptr<TcpFallbackChannel> make(orch::ContainerId peer,
                                                  tcp::TcpConnection::Ptr conn);

  ~TcpFallbackChannel() override;

  Status send(Buffer message) override;
  [[nodiscard]] bool writable() const noexcept override;
  void set_on_message(DeliverFn cb) override { on_message_ = std::move(cb); }
  void set_on_space(std::function<void()> cb) override { on_space_ = std::move(cb); }
  [[nodiscard]] orch::Transport transport() const noexcept override {
    return orch::Transport::tcp_overlay;
  }
  [[nodiscard]] orch::ContainerId peer() const noexcept override { return peer_; }
  void close() noexcept override;
  [[nodiscard]] bool closed() const noexcept override { return closed_; }

  /// Make-before-break upgrade: the peer announced (rc_answer sent) that it
  /// will switch this stream to a fresh RC channel, after which the far end
  /// closes its TCP side. The resulting FIN must not be mistaken for a
  /// transport failure — fail() would trigger a spurious refit. Anything
  /// the conduit sent into the suppressed window stays in its retained
  /// window and is replayed on the RC attach, so nothing is lost.
  void expect_close() noexcept { expect_close_ = true; }

 private:
  TcpFallbackChannel(orch::ContainerId peer, tcp::TcpConnection::Ptr conn)
      : peer_(peer), conn_(std::move(conn)) {}

  void wire();
  void pump();
  void on_conn_writable();
  void on_bytes(Buffer&& data);
  void on_conn_closed();

  orch::ContainerId peer_;
  tcp::TcpConnection::Ptr conn_;
  std::deque<Buffer> overflow_;  ///< framed records awaiting socket space
  Buffer rx_accum_;
  DeliverFn on_message_;
  std::function<void()> on_space_;
  bool closed_ = false;
  bool conn_down_ = false;  ///< the connection closed under us
  bool expect_close_ = false;
};

using TcpFallbackChannelPtr = std::shared_ptr<TcpFallbackChannel>;

}  // namespace freeflow::stream
