#include "stream/stream_socket.h"

#include <algorithm>

namespace freeflow::stream {

StreamSocket::StreamSocket(core::ConduitPtr conduit, telemetry::Counter* rx_rdma_bytes,
                           telemetry::Counter* rx_tcp_bytes)
    : conduit_(std::move(conduit)) {
  if (rx_rdma_bytes != nullptr) ctr_rx_rdma_ = rx_rdma_bytes;
  if (rx_tcp_bytes != nullptr) ctr_rx_tcp_ = rx_tcp_bytes;
}

void StreamSocket::bind() {
  auto self = weak_from_this();
  conduit_->set_on_message([self](const core::WireHeader& h, ByteSpan payload) {
    if (auto sock = self.lock()) sock->handle_message(h, payload);
  });
  conduit_->set_on_closed([self](core::CloseReason reason) {
    auto sock = self.lock();
    if (sock == nullptr) return;
    sock->open_ = false;
    // Move the handler out first: it fires at most once, even if the
    // conduit close races a sock_fin already seen by handle_message.
    auto handler = std::move(sock->on_close_);
    sock->release_callbacks();
    if (handler) handler(reason);
  });
}

void StreamSocket::release_callbacks() noexcept {
  on_data_ = nullptr;
  on_close_ = nullptr;
  on_control_ = nullptr;
}

Status StreamSocket::send(Buffer data) {
  if (!open_) return failed_precondition("stream socket closed");
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n = std::min(k_chunk, data.size() - offset);
    core::WireHeader h;
    h.type = core::VMsg::sock_data;
    conduit_->send(h, ByteSpan{data.data() + offset, n});
    offset += n;
  }
  bytes_sent_ += data.size();
  return ok_status();
}

void StreamSocket::close() {
  if (!open_) return;
  core::WireHeader h;
  h.type = core::VMsg::sock_fin;
  conduit_->send(h);
  open_ = false;
  on_data_ = nullptr;
  on_control_ = nullptr;
  // The fin is queued ahead of the conduit's bye; on_close_ stays armed to
  // report the close handshake's outcome (see FlowSocket::close).
  conduit_->close();
}

void StreamSocket::handle_message(const core::WireHeader& h, ByteSpan payload) {
  switch (h.type) {
    case core::VMsg::sock_data: {
      bytes_received_ += payload.size();
      // Split by the transport this chunk actually arrived on — the channel
      // currently attached is the one that just delivered it.
      if (conduit_->transport() == orch::Transport::rdma) {
        bytes_rdma_ += payload.size();
        ctr_rx_rdma_->inc(payload.size());
      } else {
        bytes_tcp_ += payload.size();
        ctr_rx_tcp_->inc(payload.size());
      }
      if (on_data_) on_data_(Buffer(payload.data(), payload.size()));
      return;
    }
    case core::VMsg::sock_fin: {
      open_ = false;
      // Copy: the handler may reset callbacks or drop this socket.
      auto handler = on_close_;
      if (handler) handler(core::CloseReason::peer_bye);
      release_callbacks();
      return;
    }
    case core::VMsg::rc_offer:
    case core::VMsg::rc_answer: {
      if (on_control_) on_control_(h);
      return;
    }
    default:
      break;  // handshake leftovers are ignored
  }
}

}  // namespace freeflow::stream
