#include "stream/tcp_channel.h"

#include <cstring>

namespace freeflow::stream {

std::shared_ptr<TcpFallbackChannel> TcpFallbackChannel::make(
    orch::ContainerId peer, tcp::TcpConnection::Ptr conn) {
  auto channel =
      std::shared_ptr<TcpFallbackChannel>(new TcpFallbackChannel(peer, std::move(conn)));
  channel->wire();
  return channel;
}

TcpFallbackChannel::~TcpFallbackChannel() {
  if (conn_ != nullptr) conn_->release_callbacks();
}

void TcpFallbackChannel::wire() {
  std::weak_ptr<TcpFallbackChannel> self = weak_from_this();
  conn_->set_on_data([self](Buffer&& data) {
    if (auto ch = self.lock()) ch->on_bytes(std::move(data));
  });
  conn_->set_on_writable([self]() {
    if (auto ch = self.lock()) ch->on_conn_writable();
  });
  conn_->set_on_close([self]() {
    if (auto ch = self.lock()) ch->on_conn_closed();
  });
}

void TcpFallbackChannel::on_conn_closed() {
  if (closed_) return;
  conn_down_ = true;
  overflow_.clear();
  // Upgrade FIN (make-before-break): stay quietly attached until the RC
  // channel replaces us. Sends keep "succeeding" — the conduit retains
  // every record and replays them over the new channel.
  if (expect_close_) return;
  fail();
}

Status TcpFallbackChannel::send(Buffer message) {
  if (closed_) return failed_precondition("stream tcp channel closed");
  overflow_.push_back(std::move(message));
  // Drain, but never notify from here: firing on_space_ inside send() would
  // re-enter the caller's own pump loop before it has accounted for this
  // send (a writability-paced sender would duplicate its current chunk).
  // The caller re-checks writable() itself; notifications belong to the
  // conn's writability *transition* below.
  pump();
  return ok_status();
}

bool TcpFallbackChannel::writable() const noexcept {
  return !closed_ && !conn_down_ && overflow_.empty() && conn_->writable();
}

void TcpFallbackChannel::on_conn_writable() {
  // The conn fires this only on a blocked→writable transition, so the
  // channel was necessarily unwritable before: safe to notify.
  pump();
  if (writable() && on_space_) on_space_();
}

void TcpFallbackChannel::pump() {
  if (closed_ || conn_down_) return;
  while (!overflow_.empty()) {
    const Buffer& record = overflow_.front();
    Buffer framed(4 + record.size());
    const auto len = static_cast<std::uint32_t>(record.size());
    std::memcpy(framed.data(), &len, 4);
    std::memcpy(framed.data() + 4, record.data(), record.size());
    const Status s = conn_->send(std::move(framed));
    if (!s.is_ok()) return;  // would_block: resume from on_writable
    overflow_.pop_front();
  }
}

void TcpFallbackChannel::on_bytes(Buffer&& data) {
  rx_accum_.append(data.view());
  std::size_t cursor = 0;
  while (rx_accum_.size() - cursor >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, rx_accum_.data() + cursor, 4);
    if (rx_accum_.size() - cursor - 4 < len) break;
    Buffer record(rx_accum_.data() + cursor + 4, len);
    cursor += 4 + len;
    // Re-read per record: a delivery may re-wire this channel (close or
    // attach elsewhere) mid-batch.
    if (closed_) return;
    if (on_message_) on_message_(std::move(record));
  }
  if (cursor > 0) {
    Buffer rest(rx_accum_.data() + cursor, rx_accum_.size() - cursor);
    rx_accum_ = std::move(rest);
  }
}

void TcpFallbackChannel::close() noexcept {
  if (closed_) return;
  closed_ = true;
  overflow_.clear();
  on_message_ = nullptr;
  on_space_ = nullptr;
  if (conn_ != nullptr) {
    conn_->release_callbacks();
    conn_->close();
  }
}

}  // namespace freeflow::stream
