// RcStreamChannel: a per-stream RDMA RC queue pair wrapped in the
// agent::Channel interface — the TSoR data plane. Unlike the agents'
// shared RdmaTrunk (one QP per host pair, all containers multiplexed), the
// stream adapter carves one QP per upgraded stream directly out of the
// host NIC's device, so the socket byte stream rides RDMA end to end with
// no agent relay or per-record demux on the path.
//
// One conduit message maps to one RDMA SEND into a registered slot.
// Flow control is credit-based: the receiver grants k_slots credits up
// front and returns them in rc_credit batches as it drains deliveries; a
// sender out of credits queues (the conduit's writable() deasserts, so
// well-behaved apps pace). Credit messages themselves bypass the credit
// check and are covered by a reserved pool of extra receive buffers.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "agent/channel.h"
#include "rdma/device.h"
#include "rdma/queue_pair.h"

namespace freeflow::stream {

class RcStreamChannel final : public agent::Channel,
                              public std::enable_shared_from_this<RcStreamChannel> {
 public:
  /// Slot size: one 64 KiB socket chunk + wire header, rounded up.
  static constexpr std::size_t k_slot_bytes = 66 * 1024;
  /// Data credits granted to the peer (and local send slots).
  static constexpr std::uint32_t k_slots = 16;
  /// Extra receive buffers covering in-flight rc_credit messages: at most
  /// one credit grant per k_credit_batch deliveries can be outstanding.
  static constexpr std::uint32_t k_credit_reserve = 4;
  /// Deliveries per returned credit batch.
  static constexpr std::uint32_t k_credit_batch = 4;

  /// `tenant` classifies the QP's traffic for the NIC's per-tenant
  /// scheduler (per-stream QPs belong to exactly one container).
  RcStreamChannel(rdma::RdmaDevice& device, sim::UsageAccount* account,
                  orch::ContainerId peer, std::uint32_t tenant = 0);
  ~RcStreamChannel() override;

  /// Posts receive buffers and hooks completion notifies (weakly — the QP
  /// and CQs live in the device registry and can outlive this channel).
  /// Must be called once, immediately after construction.
  void start();

  /// Connects the QP to the peer's (out-of-band exchange rides the
  /// conduit's rc_offer / rc_answer handshake). Queued sends then flow.
  Status connect(fabric::HostId remote_host, rdma::QpNum remote_qp);

  [[nodiscard]] rdma::QpNum qp_num() const noexcept { return qp_->num(); }

  Status send(Buffer message) override;
  [[nodiscard]] bool writable() const noexcept override;
  void set_on_message(DeliverFn cb) override { on_message_ = std::move(cb); }
  void set_on_space(std::function<void()> cb) override { on_space_ = std::move(cb); }
  [[nodiscard]] orch::Transport transport() const noexcept override {
    return orch::Transport::rdma;
  }
  [[nodiscard]] orch::ContainerId peer() const noexcept override { return peer_; }
  void close() noexcept override;
  [[nodiscard]] bool closed() const noexcept override { return closed_; }

  [[nodiscard]] std::uint32_t credits() const noexcept { return credits_; }

 private:
  void pump();
  void schedule_poll();
  void poll_cqs();
  void repost_recv(std::uint32_t slot);
  void return_credits();

  rdma::RdmaDevice& device_;
  sim::UsageAccount* account_;  ///< container CPU account for verb posts
  orch::ContainerId peer_;
  rdma::MrPtr send_mr_;
  rdma::MrPtr recv_mr_;
  rdma::CqPtr send_cq_;
  rdma::CqPtr recv_cq_;
  std::shared_ptr<rdma::QueuePair> qp_;
  std::vector<std::uint32_t> free_slots_;
  std::deque<Buffer> queue_;         ///< messages awaiting slot + credit
  std::uint32_t credits_ = k_slots;  ///< peer receive credits we may consume
  std::uint32_t since_credit_ = 0;   ///< deliveries since the last grant
  DeliverFn on_message_;
  std::function<void()> on_space_;
  bool closed_ = false;
  bool completion_error_ = false;
  bool poll_scheduled_ = false;
};

using RcStreamChannelPtr = std::shared_ptr<RcStreamChannel>;

}  // namespace freeflow::stream
