// StreamSocket: the stream adapter's application-facing byte stream. Same
// surface as core::FlowSocket (send / on_data / on_space / on_close), but
// the conduit underneath is bound by StreamNet, which splices it between
// the overlay-TCP fallback and a per-stream RDMA RC channel at runtime —
// the unmodified socket app never observes the transport changing.
//
// The socket additionally forwards the adapter's in-band control messages
// (rc_offer / rc_answer) back to StreamNet, and splits its byte counters
// by the transport each chunk actually arrived on, so benches and the CI
// gate can prove how much of the stream really rode RDMA.
#pragma once

#include <memory>

#include "core/conduit.h"
#include "telemetry/metrics.h"

namespace freeflow::stream {

class StreamSocket : public std::enable_shared_from_this<StreamSocket> {
 public:
  using DataFn = std::function<void(Buffer&&)>;
  using VoidFn = std::function<void()>;
  using CloseFn = std::function<void(core::CloseReason)>;
  using ControlFn = std::function<void(const core::WireHeader&)>;

  StreamSocket(core::ConduitPtr conduit, telemetry::Counter* rx_rdma_bytes,
               telemetry::Counter* rx_tcp_bytes);

  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;

  /// Sends stream bytes (chunked into conduit messages). Never blocks;
  /// pace on writable()/on_space for bounded memory.
  Status send(Buffer data);

  [[nodiscard]] bool writable() const noexcept { return open_ && conduit_->writable(); }

  void set_on_data(DataFn cb) { on_data_ = std::move(cb); }
  void set_on_space(VoidFn cb) { conduit_->set_on_space(std::move(cb)); }
  void set_on_close(CloseFn cb) { on_close_ = std::move(cb); }
  /// StreamNet-internal: receives the RC upgrade handshake messages.
  void set_on_control(ControlFn cb) { on_control_ = std::move(cb); }

  void close();

  [[nodiscard]] bool is_open() const noexcept { return open_; }
  [[nodiscard]] orch::Transport transport() const noexcept { return conduit_->transport(); }
  [[nodiscard]] core::ConduitPtr conduit() const noexcept { return conduit_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return bytes_received_; }
  /// Received-byte split by arrival transport (rdma vs everything else).
  [[nodiscard]] std::uint64_t bytes_rdma() const noexcept { return bytes_rdma_; }
  [[nodiscard]] std::uint64_t bytes_tcp() const noexcept { return bytes_tcp_; }

  /// StreamNet-internal: wires conduit messages to this socket.
  void bind();

  /// Stream chunk size (matches FlowSocket / the kernel stack's GSO unit).
  static constexpr std::size_t k_chunk = 64 * 1024;

 private:
  void handle_message(const core::WireHeader& header, ByteSpan payload);
  void release_callbacks() noexcept;

  core::ConduitPtr conduit_;
  bool open_ = true;
  DataFn on_data_;
  CloseFn on_close_;
  ControlFn on_control_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t bytes_rdma_ = 0;
  std::uint64_t bytes_tcp_ = 0;
  telemetry::Counter* ctr_rx_rdma_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_rx_tcp_ = telemetry::Counter::discard();
};

using StreamSocketPtr = std::shared_ptr<StreamSocket>;

}  // namespace freeflow::stream
