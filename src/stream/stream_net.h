// StreamNet: the TSoR-style transparent sockets-over-RDMA adapter. One
// instance per container, layered on the container's ContainerNet. It
// terminates the socket API locally (StreamSocket) and carries the ordered
// byte stream over a conduit whose channel it splices at runtime:
//
//   - Every stream starts on the overlay-TCP fallback (TcpFallbackChannel
//     over FreeFlow::fallback_net()) — this always works, including for
//     untrusted pairs where the selector answers tcp_overlay.
//   - When decide() grants rdma, the initiator runs the in-band upgrade
//     handshake (rc_offer -> rc_answer -> rc_switch) and splices a
//     per-stream RC QP (RcStreamChannel) onto the conduit make-before-
//     break: the retained-window retransmit plus receiver-side dedup make
//     the switch byte-exact and in-order.
//   - On RDMA death the ordinary health/refit path fires, but routed here
//     via ContainerNet::StreamHooks: mark_stale -> dial a fresh fallback
//     connection -> rebind -> retransmit. Recovery re-upgrades the same way.
//
// The application never sees any of this: StreamSocket's surface is plain
// send / on_data, and zero-loss in-order delivery holds across every splice.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/container_net.h"
#include "stream/rc_channel.h"
#include "stream/stream_socket.h"
#include "stream/tcp_channel.h"

namespace freeflow::stream {

class StreamNet : public std::enable_shared_from_this<StreamNet> {
 public:
  using AcceptFn = std::function<void(StreamSocketPtr)>;
  using ConnectFn = std::function<void(Result<StreamSocketPtr>)>;

  static std::shared_ptr<StreamNet> make(core::ContainerNetPtr net);
  ~StreamNet();

  StreamNet(const StreamNet&) = delete;
  StreamNet& operator=(const StreamNet&) = delete;

  /// Binds a stream listener on the container's overlay IP.
  Status listen(std::uint16_t port, AcceptFn on_accept);
  void close_listener(std::uint16_t port);

  /// Opens a stream toward `peer_ip:port`. The socket is handed over once
  /// the peer accepts (over the fallback transport); the RDMA upgrade runs
  /// transparently afterwards when the selector allows it.
  void connect(tcp::Ipv4Addr peer_ip, std::uint16_t port, ConnectFn done);

  [[nodiscard]] core::ContainerNet& net() noexcept { return *net_; }
  /// Streams spliced tcp -> rdma (initiator side).
  [[nodiscard]] std::uint64_t upgrades() const noexcept { return upgrades_; }
  /// Streams spliced (back) onto a fresh fallback connection.
  [[nodiscard]] std::uint64_t fallbacks() const noexcept { return fallbacks_; }
  [[nodiscard]] std::size_t stream_count() const noexcept { return conduits_.size(); }

 private:
  explicit StreamNet(core::ContainerNetPtr net);

  using DialFn = std::function<void(Result<tcp::TcpConnection::Ptr>)>;
  /// Fallback-net connect with retry/backoff: overlay routes converge
  /// asynchronously, so early dials can transiently fail (same reason the
  /// agent trunks retry their establishment).
  void dial(tcp::Endpoint local, tcp::Endpoint remote, int attempt, DialFn cb);

  void on_incoming_conn(tcp::TcpConnection::Ptr conn);
  void handle_first_message(agent::Channel* raw, const Buffer& message);
  StreamSocketPtr make_socket(const core::ConduitPtr& conduit);
  void adopt(const core::ConduitPtr& conduit);

  /// The StreamHooks refit: re-decide and splice per adapter policy.
  void refit(const core::ConduitPtr& conduit);
  void dial_fallback(const core::ConduitPtr& conduit, bool upgrade_after);
  void start_upgrade(const core::ConduitPtr& conduit);
  void handle_control(const core::ConduitPtr& conduit, const core::WireHeader& h);
  void handle_rc_first_message(std::uint64_t token, const Buffer& message);
  /// StreamHooks.quiesce: cancel in-flight upgrade/dial state ahead of a
  /// planned-migration capture (the post-restore refit starts clean).
  void quiesce_stream(std::uint64_t token);
  void drop_stream_state(std::uint64_t token);

  [[nodiscard]] core::FreeFlow& ff() noexcept { return net_->freeflow(); }
  [[nodiscard]] telemetry::Telemetry& telemetry();

  core::ContainerNetPtr net_;
  std::unordered_map<std::uint16_t, AcceptFn> listeners_;
  /// Incoming fallback channels awaiting their routing (first) frame;
  /// owned here like ContainerNet::pending_incoming_ (no self-cycle).
  std::unordered_map<agent::Channel*, TcpFallbackChannelPtr> pending_incoming_;
  /// Initiator side: RC channel offered, awaiting the peer's rc_answer.
  std::unordered_map<std::uint64_t, RcStreamChannelPtr> pending_upgrade_;
  /// Passive side: RC channel connected, awaiting rc_switch on the wire.
  std::unordered_map<std::uint64_t, RcStreamChannelPtr> pending_rc_;
  /// Stream conduits by token (strong: mirrors ContainerNet::conduits_,
  /// released by the stream teardown hook).
  std::unordered_map<std::uint64_t, core::ConduitPtr> conduits_;
  /// The TCP channel currently attached per stream (weak — the conduit
  /// owns it); needed to mark expect_close() during the upgrade.
  std::unordered_map<std::uint64_t, std::weak_ptr<TcpFallbackChannel>> attached_tcp_;
  /// Tokens with a fallback dial in flight (at most one each).
  std::unordered_set<std::uint64_t> dialing_;

  std::uint64_t upgrades_ = 0;
  std::uint64_t fallbacks_ = 0;
  telemetry::Counter* ctr_upgrades_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_fallbacks_ = telemetry::Counter::discard();
};

using StreamNetPtr = std::shared_ptr<StreamNet>;

}  // namespace freeflow::stream
