#include "stream/stream_net.h"

#include "common/logging.h"
#include "core/freeflow.h"

namespace freeflow::stream {

namespace {
std::uint32_t trace_tid(std::uint64_t token) {
  return static_cast<std::uint32_t>(token);
}
}  // namespace

StreamNet::StreamNet(core::ContainerNetPtr net) : net_(std::move(net)) {
  auto& metrics = telemetry().metrics();
  ctr_upgrades_ = &metrics.counter("stream/upgrades");
  ctr_fallbacks_ = &metrics.counter("stream/fallbacks");
}

std::shared_ptr<StreamNet> StreamNet::make(core::ContainerNetPtr net) {
  return std::shared_ptr<StreamNet>(new StreamNet(std::move(net)));
}

StreamNet::~StreamNet() {
  for (auto& [port, fn] : listeners_) {
    (void)fn;
    ff().fallback_net().close_listener({net_->ip(), port});
  }
  for (auto& [raw, channel] : pending_incoming_) {
    (void)raw;
    channel->close();
  }
  for (auto& [token, channel] : pending_upgrade_) {
    (void)token;
    channel->close();
  }
  for (auto& [token, channel] : pending_rc_) {
    (void)token;
    channel->close();
  }
}

telemetry::Telemetry& StreamNet::telemetry() {
  return ff().orchestrator().cluster_orch().cluster().telemetry();
}

void StreamNet::dial(tcp::Endpoint local, tcp::Endpoint remote, int attempt,
                     DialFn cb) {
  constexpr int k_dial_attempts = 12;
  constexpr SimDuration k_dial_backoff0 = 100 * k_microsecond;
  std::weak_ptr<StreamNet> self = weak_from_this();
  ff().fallback_net().connect(
      local, remote,
      [self, local, remote, attempt, cb = std::move(cb)](
          Result<tcp::TcpConnection::Ptr> r) mutable {
        auto net = self.lock();
        if (net == nullptr) {
          if (r.is_ok()) (*r)->close();
          return;
        }
        if (!r.is_ok() && attempt + 1 < k_dial_attempts) {
          const SimDuration delay = std::min<SimDuration>(
              k_dial_backoff0 << attempt, 5 * k_millisecond);
          net->net_->loop().schedule(
              delay, [self, local, remote, attempt, cb = std::move(cb)]() mutable {
                if (auto n = self.lock()) n->dial(local, remote, attempt + 1, std::move(cb));
              });
          return;
        }
        cb(std::move(r));
      });
}

// ------------------------------------------------------------ socket surface

Status StreamNet::listen(std::uint16_t port, AcceptFn on_accept) {
  auto [it, inserted] = listeners_.emplace(port, std::move(on_accept));
  (void)it;
  if (!inserted) return already_exists("stream port in use");
  std::weak_ptr<StreamNet> self = weak_from_this();
  const Status bound = ff().fallback_net().listen(
      tcp::Endpoint{net_->ip(), port}, [self](tcp::TcpConnection::Ptr conn) {
        if (auto net = self.lock()) net->on_incoming_conn(std::move(conn));
      });
  if (!bound.is_ok()) listeners_.erase(port);
  return bound;
}

void StreamNet::close_listener(std::uint16_t port) {
  if (listeners_.erase(port) > 0) {
    ff().fallback_net().close_listener(tcp::Endpoint{net_->ip(), port});
  }
}

void StreamNet::connect(tcp::Ipv4Addr peer_ip, std::uint16_t port, ConnectFn done) {
  auto peer = ff().orchestrator().resolve_ip(peer_ip);
  if (!peer.is_ok()) {
    net_->loop().schedule(0, [done = std::move(done), s = peer.status()]() { done(s); });
    return;
  }
  auto conduit = std::make_shared<core::Conduit>(ff().next_token(), net_->id(), *peer,
                                                 peer_ip, port, /*initiator=*/true);
  adopt(conduit);

  // `done` has two possible firing sites (dial failure, peer's verdict);
  // the shared once-wrapper guarantees exactly one wins.
  auto done_once = std::make_shared<ConnectFn>(std::move(done));
  auto fire = [done_once](Result<StreamSocketPtr> r) {
    if (*done_once == nullptr) return;
    auto cb = std::move(*done_once);
    *done_once = nullptr;
    cb(std::move(r));
  };

  std::weak_ptr<StreamNet> self = weak_from_this();
  // Await sock_accept / sock_reject over the fallback connection.
  conduit->set_on_message([self, conduit, fire](const core::WireHeader& h, ByteSpan) {
    auto net = self.lock();
    if (net == nullptr) return;
    if (h.type == core::VMsg::sock_accept) {
      auto sock = net->make_socket(conduit);
      fire(sock);
      // The stream is live on the fallback path; upgrade to RDMA now if the
      // selector allows it.
      net->refit(conduit);
    } else {
      conduit->close();
      fire(connection_refused("peer rejected stream on port"));
    }
  });
  core::WireHeader h;
  h.type = core::VMsg::sock_connect;
  h.port = port;
  h.token = conduit->token();
  conduit->send(h);  // queued: the routing (first) frame once the dial lands

  dial(tcp::Endpoint{net_->ip(), 0}, tcp::Endpoint{peer_ip, port}, 0,
      [self, conduit, fire](Result<tcp::TcpConnection::Ptr> r) {
        auto net = self.lock();
        if (net == nullptr || conduit->closed()) {
          if (r.is_ok()) (*r)->close();
          return;
        }
        if (!r.is_ok()) {
          conduit->close();
          fire(r.status());
          return;
        }
        auto channel = TcpFallbackChannel::make(conduit->peer(), std::move(r.value()));
        conduit->attach_channel(channel);  // drains the queued sock_connect
        net->attached_tcp_[conduit->token()] = channel;
      });
}

void StreamNet::on_incoming_conn(tcp::TcpConnection::Ptr conn) {
  auto src = ff().orchestrator().resolve_ip(conn->flow().remote.ip);
  if (!src.is_ok()) {
    conn->close();
    return;
  }
  // Tap the first frame to route the connection (setup vs rebind); the map
  // owns the channel, the tap captures only a raw key (no self-cycle).
  auto channel = TcpFallbackChannel::make(*src, std::move(conn));
  auto raw = channel.get();
  pending_incoming_.emplace(raw, std::move(channel));
  std::weak_ptr<StreamNet> self = weak_from_this();
  raw->set_on_message([self, raw](Buffer&& message) {
    if (auto net = self.lock()) net->handle_first_message(raw, message);
  });
}

void StreamNet::handle_first_message(agent::Channel* raw, const Buffer& message) {
  auto pit = pending_incoming_.find(raw);
  if (pit == pending_incoming_.end()) return;  // already routed or torn down
  TcpFallbackChannelPtr channel = std::move(pit->second);
  pending_incoming_.erase(pit);

  auto parsed = core::parse_message(message.view());
  if (!parsed.is_ok()) {
    FF_LOG(warn, "stream") << "bad first frame on incoming stream connection";
    channel->close();
    return;
  }
  const core::WireHeader& header = parsed->header;
  switch (header.type) {
    case core::VMsg::sock_connect: {
      auto lit = listeners_.find(header.port);
      core::WireHeader reply;
      reply.token = header.token;
      if (lit == listeners_.end()) {
        reply.type = core::VMsg::sock_reject;
        channel->send(core::make_message(reply));
        channel->close();
        return;
      }
      auto c = ff().orchestrator().cluster_orch().container(channel->peer());
      auto conduit = std::make_shared<core::Conduit>(
          header.token, net_->id(), channel->peer(), c ? c->ip() : tcp::Ipv4Addr{},
          header.port, /*initiator=*/false);
      // The routing tap consumed the peer's first sequenced message.
      conduit->sync_rx(header.seq);
      conduit->attach_channel(channel);
      attached_tcp_[header.token] = channel;
      adopt(conduit);
      auto sock = make_socket(conduit);
      reply.type = core::VMsg::sock_accept;
      conduit->send(reply);
      lit->second(sock);
      return;
    }
    case core::VMsg::rebind: {
      auto it = conduits_.find(header.token);
      if (it == conduits_.end()) {
        FF_LOG(warn, "stream") << "rebind for unknown stream " << header.token;
        channel->close();
        return;
      }
      it->second->attach_channel(channel);
      attached_tcp_[header.token] = channel;
      ++fallbacks_;
      ctr_fallbacks_->inc();
      telemetry().tracer().instant("stream", "stream_fallback", net_->id(),
                                   trace_tid(header.token));
      return;
    }
    case core::VMsg::bye: {
      // Peer opened a connection and tore the stream down before it routed.
      core::WireHeader reply;
      reply.type = core::VMsg::bye_ack;
      reply.token = header.token;
      channel->send(core::make_message(reply));
      channel->close();
      return;
    }
    default:
      FF_LOG(warn, "stream") << "unexpected first frame type "
                             << static_cast<int>(header.type);
      channel->close();
  }
}

// --------------------------------------------------------------- plumbing

StreamSocketPtr StreamNet::make_socket(const core::ConduitPtr& conduit) {
  auto& metrics = telemetry().metrics();
  const std::string prefix = "stream/" + std::to_string(conduit->token()) + "/c" +
                             std::to_string(net_->id());
  auto sock = std::make_shared<StreamSocket>(conduit,
                                             &metrics.counter(prefix + "/bytes_rdma"),
                                             &metrics.counter(prefix + "/bytes_tcp"));
  sock->bind();
  std::weak_ptr<StreamNet> self = weak_from_this();
  std::weak_ptr<core::Conduit> weak_conduit = conduit;
  sock->set_on_control([self, weak_conduit](const core::WireHeader& h) {
    auto net = self.lock();
    auto c = weak_conduit.lock();
    if (net != nullptr && c != nullptr) net->handle_control(c, h);
  });
  return sock;
}

void StreamNet::adopt(const core::ConduitPtr& conduit) {
  conduits_[conduit->token()] = conduit;
  std::weak_ptr<StreamNet> self = weak_from_this();
  core::ContainerNet::StreamHooks hooks;
  hooks.refit = [self](const core::ConduitPtr& c) {
    if (auto net = self.lock()) net->refit(c);
  };
  hooks.teardown = [self, token = conduit->token()]() {
    if (auto net = self.lock()) net->drop_stream_state(token);
  };
  hooks.quiesce = [self, token = conduit->token()]() {
    if (auto net = self.lock()) net->quiesce_stream(token);
  };
  net_->adopt_stream_conduit(conduit, std::move(hooks));
}

void StreamNet::quiesce_stream(std::uint64_t token) {
  // Planned migration is about to capture this stream's conduit: any
  // half-built upgrade QP or in-flight fallback dial belongs to the
  // pre-move placement and must not attach mid-capture. The post-restore
  // refit re-dials (and re-upgrades) against the new placement.
  dialing_.erase(token);
  if (auto it = pending_upgrade_.find(token); it != pending_upgrade_.end()) {
    it->second->close();
    pending_upgrade_.erase(it);
  }
  if (auto it = pending_rc_.find(token); it != pending_rc_.end()) {
    it->second->close();
    pending_rc_.erase(it);
  }
}

void StreamNet::drop_stream_state(std::uint64_t token) {
  conduits_.erase(token);
  attached_tcp_.erase(token);
  dialing_.erase(token);
  if (auto it = pending_upgrade_.find(token); it != pending_upgrade_.end()) {
    it->second->close();
    pending_upgrade_.erase(it);
  }
  if (auto it = pending_rc_.find(token); it != pending_rc_.end()) {
    it->second->close();
    pending_rc_.erase(it);
  }
}

// ------------------------------------------------------- transport policy

void StreamNet::refit(const core::ConduitPtr& conduit) {
  if (conduit->closed() || conduit->closing()) return;
  // Under a planned migration the coordinator owns the conduit: no dial or
  // upgrade may attach a pre-move channel mid-capture.
  if (conduit->paused() || conduit->migrating()) return;
  // Never attached yet: the initial dial is still in flight — a rebind-first
  // fallback dial would confuse the peer's routing tap. Let it land.
  if (!conduit->live() && conduit->rebinds() == 0) return;
  std::weak_ptr<StreamNet> self = weak_from_this();
  ff().selector_on(net_->container()->host())
      .decide(net_->id(), conduit->peer(),
              [self, conduit](Result<orch::TransportDecision> d) {
    auto net = self.lock();
    if (net == nullptr) return;
    if (conduit->closed() || conduit->closing()) return;
    if (conduit->paused() || conduit->migrating()) return;
    // The adapter rides exactly two transports: a per-stream RC QP when the
    // selector grants rdma, the overlay-TCP fallback for everything else
    // (including tcp_overlay itself — no-trust pairs simply never upgrade).
    const bool want_rdma = d.is_ok() && d->transport == orch::Transport::rdma;
    if (!conduit->live()) {
      net->dial_fallback(conduit, /*upgrade_after=*/want_rdma);
      return;
    }
    if (want_rdma && conduit->transport() != orch::Transport::rdma) {
      net->start_upgrade(conduit);
      return;
    }
    if (!want_rdma && conduit->transport() == orch::Transport::rdma) {
      // The RC path lost its grant (NIC death, policy change): break, then
      // re-make on a fresh fallback connection. The retained window replays
      // everything the dead QP swallowed.
      conduit->mark_stale();
      net->dial_fallback(conduit, /*upgrade_after=*/false);
    }
  });
}

void StreamNet::dial_fallback(const core::ConduitPtr& conduit, bool upgrade_after) {
  const std::uint64_t token = conduit->token();
  // A pending upgrade QP is for the path that just died; drop it.
  if (auto it = pending_upgrade_.find(token); it != pending_upgrade_.end()) {
    it->second->close();
    pending_upgrade_.erase(it);
  }
  if (!dialing_.insert(token).second) return;  // one dial in flight per stream
  const std::uint64_t gen = conduit->generation();
  std::weak_ptr<StreamNet> self = weak_from_this();
  dial(tcp::Endpoint{net_->ip(), 0},
      tcp::Endpoint{conduit->peer_ip(), conduit->service_port()}, 0,
      [self, conduit, token, gen, upgrade_after](Result<tcp::TcpConnection::Ptr> r) {
        auto net = self.lock();
        if (net == nullptr) {
          if (r.is_ok()) (*r)->close();
          return;
        }
        net->dialing_.erase(token);
        if (conduit->closed() || conduit->paused() || conduit->migrating()) {
          if (r.is_ok()) (*r)->close();
          return;
        }
        if (!r.is_ok()) {
          // Leave the conduit stale: sends queue, and the next health event
          // retries (mirrors ContainerNet::refit_conduit's failure path).
          FF_LOG(warn, "stream") << "stream fallback dial failed (will retry "
                                    "on next health event): " << r.status();
          return;
        }
        if (conduit->generation() != gen) {
          // A newer detach won the race; re-decide with fresh state.
          (*r)->close();
          net->refit(conduit);
          return;
        }
        auto channel = TcpFallbackChannel::make(conduit->peer(), std::move(r.value()));
        core::WireHeader h;
        h.type = core::VMsg::rebind;
        h.token = token;
        // The rebind must be the first frame on the fresh connection.
        channel->send(core::make_message(h));
        conduit->attach_channel(channel);
        net->attached_tcp_[token] = channel;
        ++net->fallbacks_;
        net->ctr_fallbacks_->inc();
        net->telemetry().tracer().instant("stream", "stream_fallback",
                                          net->net_->id(), trace_tid(token));
        if (upgrade_after) net->refit(conduit);
      });
}

// ---------------------------------------------------------- RC upgrade path

void StreamNet::start_upgrade(const core::ConduitPtr& conduit) {
  const std::uint64_t token = conduit->token();
  if (pending_upgrade_.contains(token)) return;
  auto& agent = ff().agents().agent_on(net_->container()->host());
  auto channel = std::make_shared<RcStreamChannel>(
      agent.rdma_device(), &net_->container()->account(), conduit->peer(),
      net_->container()->tenant());
  channel->start();
  pending_upgrade_.emplace(token, channel);
  core::WireHeader h;
  h.type = core::VMsg::rc_offer;
  h.token = token;
  h.id = channel->qp_num();
  h.offset = net_->container()->host();
  conduit->send(h);
}

void StreamNet::handle_control(const core::ConduitPtr& conduit,
                               const core::WireHeader& h) {
  const std::uint64_t token = conduit->token();
  switch (h.type) {
    case core::VMsg::rc_offer: {
      // Passive side: build + connect our QP, tap it for rc_switch, and
      // answer. The initiator switches first; we splice on its rc_switch.
      auto& agent = ff().agents().agent_on(net_->container()->host());
      auto channel = std::make_shared<RcStreamChannel>(
          agent.rdma_device(), &net_->container()->account(), conduit->peer(),
          net_->container()->tenant());
      channel->start();
      const Status connected =
          channel->connect(static_cast<fabric::HostId>(h.offset),
                           static_cast<rdma::QpNum>(h.id));
      if (!connected.is_ok()) {
        FF_LOG(warn, "stream") << "rc_offer connect failed: " << connected;
        channel->close();
        return;
      }
      std::weak_ptr<StreamNet> self = weak_from_this();
      channel->set_on_message([self, token](Buffer&& message) {
        if (auto net = self.lock()) net->handle_rc_first_message(token, message);
      });
      if (auto it = pending_rc_.find(token); it != pending_rc_.end()) {
        it->second->close();  // superseded by the fresh offer
        it->second = channel;
      } else {
        pending_rc_.emplace(token, channel);
      }
      // Make-before-break: the initiator will close its TCP side right
      // after switching; that FIN is expected, not a transport failure.
      if (auto it = attached_tcp_.find(token); it != attached_tcp_.end()) {
        if (auto tcp_channel = it->second.lock()) tcp_channel->expect_close();
      }
      core::WireHeader reply;
      reply.type = core::VMsg::rc_answer;
      reply.token = token;
      reply.id = channel->qp_num();
      reply.offset = net_->container()->host();
      conduit->send(reply);
      return;
    }
    case core::VMsg::rc_answer: {
      // Initiator side: the peer's QP is connected and tapping; switch.
      auto it = pending_upgrade_.find(token);
      if (it == pending_upgrade_.end()) return;  // upgrade superseded by failover
      auto channel = std::move(it->second);
      pending_upgrade_.erase(it);
      const Status connected =
          channel->connect(static_cast<fabric::HostId>(h.offset),
                           static_cast<rdma::QpNum>(h.id));
      if (!connected.is_ok()) {
        FF_LOG(warn, "stream") << "rc_answer connect failed: " << connected;
        channel->close();
        return;
      }
      // rc_switch must be the first message on the QP: it precedes the
      // retained-window replay the attach below triggers, so the peer's tap
      // routes the channel before any data arrives on it.
      core::WireHeader sw;
      sw.type = core::VMsg::rc_switch;
      sw.token = token;
      channel->send(core::make_message(sw));
      conduit->attach_channel(channel);  // closes the TCP side (peer expects it)
      attached_tcp_.erase(token);
      ++upgrades_;
      ctr_upgrades_->inc();
      telemetry().tracer().instant("stream", "stream_upgrade", net_->id(),
                                   trace_tid(token));
      return;
    }
    default:
      return;
  }
}

void StreamNet::handle_rc_first_message(std::uint64_t token, const Buffer& message) {
  auto parsed = core::parse_message(message.view());
  if (!parsed.is_ok() || parsed->header.type != core::VMsg::rc_switch) {
    FF_LOG(warn, "stream") << "unexpected first message on stream RC channel"
                           << " token=" << token << " size=" << message.size();
    return;
  }
  auto it = pending_rc_.find(token);
  if (it == pending_rc_.end()) return;
  auto channel = std::move(it->second);
  pending_rc_.erase(it);
  auto cit = conduits_.find(token);
  if (cit == conduits_.end() || cit->second->closed()) {
    channel->close();
    return;
  }
  cit->second->attach_channel(channel);  // closes our (already quiet) TCP side
  attached_tcp_.erase(token);
  ++upgrades_;
  ctr_upgrades_->inc();
  telemetry().tracer().instant("stream", "stream_upgrade", net_->id(),
                               trace_tid(token));
}

}  // namespace freeflow::stream
