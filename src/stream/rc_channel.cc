#include "stream/rc_channel.h"

#include <cstring>

#include "common/logging.h"
#include "core/wire.h"

namespace freeflow::stream {

RcStreamChannel::RcStreamChannel(rdma::RdmaDevice& device, sim::UsageAccount* account,
                                 orch::ContainerId peer, std::uint32_t tenant)
    : device_(device), account_(account), peer_(peer) {
  send_mr_ = device_.reg_mr(k_slot_bytes * k_slots);
  recv_mr_ = device_.reg_mr(k_slot_bytes * (k_slots + k_credit_reserve));
  send_cq_ = device_.create_cq(k_slots * 4);
  recv_cq_ = device_.create_cq((k_slots + k_credit_reserve) * 4);
  rdma::QpAttr attr;
  attr.max_send_wr = k_slots * 2;
  attr.max_recv_wr = (k_slots + k_credit_reserve) * 2;
  attr.tenant = tenant;
  qp_ = device_.create_qp(send_cq_, recv_cq_, attr);
  free_slots_.reserve(k_slots);
  for (std::uint32_t s = 0; s < k_slots; ++s) free_slots_.push_back(s);
}

RcStreamChannel::~RcStreamChannel() {
  send_cq_->set_notify(nullptr);
  recv_cq_->set_notify(nullptr);
}

void RcStreamChannel::start() {
  for (std::uint32_t s = 0; s < k_slots + k_credit_reserve; ++s) repost_recv(s);
  std::weak_ptr<RcStreamChannel> self = weak_from_this();
  auto notify = [self]() {
    if (auto ch = self.lock()) ch->schedule_poll();
  };
  send_cq_->set_notify(notify);
  recv_cq_->set_notify(notify);
}

Status RcStreamChannel::connect(fabric::HostId remote_host, rdma::QpNum remote_qp) {
  const Status s = qp_->connect(remote_host, remote_qp);
  if (s.is_ok()) pump();
  return s;
}

void RcStreamChannel::repost_recv(std::uint32_t slot) {
  rdma::RecvWr wr;
  wr.wr_id = slot;
  wr.local = {recv_mr_, slot * k_slot_bytes, k_slot_bytes};
  const Status posted = qp_->post_recv(wr, account_);
  FF_CHECK(posted.is_ok());
}

Status RcStreamChannel::send(Buffer message) {
  if (closed_) return failed_precondition("stream rc channel closed");
  FF_CHECK(message.size() <= k_slot_bytes);
  queue_.push_back(std::move(message));
  pump();
  return ok_status();
}

bool RcStreamChannel::writable() const noexcept {
  return !closed_ && qp_->state() == rdma::QpState::ready && queue_.empty() &&
         !free_slots_.empty() && credits_ > 0;
}

void RcStreamChannel::pump() {
  if (closed_ || qp_->state() != rdma::QpState::ready) return;
  while (!queue_.empty() && !free_slots_.empty() && credits_ > 0) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    Buffer message = std::move(queue_.front());
    queue_.pop_front();

    auto dst = send_mr_->slice(slot * k_slot_bytes, message.size());
    FF_CHECK(dst.is_ok());
    std::memcpy(dst->data(), message.data(), message.size());

    rdma::SendWr wr;
    wr.wr_id = slot;
    wr.opcode = rdma::Opcode::send;
    wr.local = {send_mr_, slot * k_slot_bytes, message.size()};
    wr.signaled = true;
    const Status posted = qp_->post_send(wr, account_);
    FF_CHECK(posted.is_ok());
    --credits_;
  }
}

void RcStreamChannel::return_credits() {
  if (since_credit_ == 0 || closed_) return;
  if (free_slots_.empty() || qp_->state() != rdma::QpState::ready) return;
  // Credit grants bypass the data-credit check (the peer reserves receive
  // buffers for them) but still occupy a local send slot; if none is free
  // the next poll's completions retry.
  core::WireHeader h;
  h.type = core::VMsg::rc_credit;
  h.id = since_credit_;
  Buffer message = core::make_message(h);

  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  auto dst = send_mr_->slice(slot * k_slot_bytes, message.size());
  FF_CHECK(dst.is_ok());
  std::memcpy(dst->data(), message.data(), message.size());
  rdma::SendWr wr;
  wr.wr_id = slot;
  wr.opcode = rdma::Opcode::send;
  wr.local = {send_mr_, slot * k_slot_bytes, message.size()};
  wr.signaled = true;
  const Status posted = qp_->post_send(wr, account_);
  FF_CHECK(posted.is_ok());
  since_credit_ = 0;
}

void RcStreamChannel::schedule_poll() {
  if (poll_scheduled_ || closed_) return;
  poll_scheduled_ = true;
  std::weak_ptr<RcStreamChannel> self = weak_from_this();
  device_.host().loop().schedule(device_.host().cost_model().agent_wakeup_ns, [self]() {
    auto ch = self.lock();
    if (ch == nullptr) return;
    ch->poll_scheduled_ = false;
    ch->poll_cqs();
  });
}

void RcStreamChannel::poll_cqs() {
  auto& host = device_.host();
  const auto& m = host.cost_model();
  const bool was_writable = writable();
  rdma::WorkCompletion wcs[16];

  for (;;) {
    const std::size_t n = send_cq_->poll(wcs);
    if (n == 0) break;
    host.cpu().submit(m.rdma_poll_ns * static_cast<double>(n), nullptr, account_);
    for (std::size_t i = 0; i < n; ++i) {
      if (wcs[i].status != rdma::WcStatus::success) completion_error_ = true;
      free_slots_.push_back(static_cast<std::uint32_t>(wcs[i].wr_id));
    }
  }
  for (;;) {
    const std::size_t n = recv_cq_->poll(wcs);
    if (n == 0) break;
    host.cpu().submit(m.rdma_poll_ns * static_cast<double>(n), nullptr, account_);
    for (std::size_t i = 0; i < n; ++i) {
      const auto slot = static_cast<std::uint32_t>(wcs[i].wr_id);
      Buffer message(recv_mr_->data().data() + slot * k_slot_bytes, wcs[i].byte_len);
      repost_recv(slot);
      if (wcs[i].status != rdma::WcStatus::success) {
        completion_error_ = true;
        continue;
      }
      auto parsed = core::parse_message(message.view());
      if (parsed.is_ok() && parsed->header.type == core::VMsg::rc_credit &&
          parsed->header.seq == 0) {
        credits_ += static_cast<std::uint32_t>(parsed->header.id);
        continue;
      }
      ++since_credit_;
      // Re-read per delivery: an attach_channel (e.g. the rc_switch tap
      // routing this channel onto its conduit) re-wires us mid-batch.
      if (closed_) return;
      if (on_message_) on_message_(std::move(message));
      if (closed_) return;
    }
  }
  if (since_credit_ >= k_credit_batch) return_credits();
  pump();
  if (!was_writable && writable() && on_space_) on_space_();
  if (completion_error_ && !closed_) {
    completion_error_ = false;
    // The QP errored (remote death, access fault): hand the stream back to
    // the conduit's failover path exactly like a failed agent lane.
    fail();
  }
}

void RcStreamChannel::close() noexcept {
  if (closed_) return;
  closed_ = true;
  queue_.clear();
  on_message_ = nullptr;
  on_space_ = nullptr;
  send_cq_->set_notify(nullptr);
  recv_cq_->set_notify(nullptr);
}

}  // namespace freeflow::stream
