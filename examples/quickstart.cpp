// FreeFlow quickstart: deploy two containers with the cluster orchestrator,
// attach the FreeFlow library, and exchange messages over a socket — the
// library transparently picks shared memory because the orchestrator
// placed both containers on the same host.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/histogram.h"
#include "core/freeflow.h"
#include "orchestrator/cluster_orchestrator.h"

using namespace freeflow;

int main() {
  // 1. The simulated datacenter: two 4-core hosts with 40 Gb/s RDMA NICs
  //    behind one ToR switch, plus the overlay control plane FreeFlow
  //    inherits (IPAM + per-host software routers).
  fabric::Cluster cluster;
  cluster.add_hosts(2);
  overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
  overlay.attach_host(0);
  overlay.attach_host(1);

  // 2. The cluster orchestrator (Mesos/Kubernetes stand-in) and FreeFlow's
  //    network orchestrator on top of it.
  orch::ClusterOrchestrator cluster_orch(cluster, overlay);
  orch::NetworkOrchestrator net_orch(cluster_orch);
  core::FreeFlow freeflow(net_orch);

  // 3. Deploy two containers of the same tenant onto host 0.
  orch::ContainerSpec spec;
  spec.name = "frontend";
  spec.tenant = 42;
  spec.pinned_host = 0u;
  auto frontend = cluster_orch.deploy(spec).value();
  spec.name = "backend";
  auto backend = cluster_orch.deploy(spec).value();
  std::printf("deployed %s (%s) and %s (%s)\n", frontend->name().c_str(),
              frontend->ip().to_string().c_str(), backend->name().c_str(),
              backend->ip().to_string().c_str());

  // 4. Attach the network library inside each container.
  auto frontend_net = freeflow.attach(frontend->id()).value();
  auto backend_net = freeflow.attach(backend->id()).value();

  // 5. Standard socket shapes: the backend listens, the frontend connects
  //    by overlay IP. Neither side knows (or cares) where the other runs.
  core::FlowSocketPtr server;
  FF_CHECK(backend_net->sock_listen(8080, [&](core::FlowSocketPtr s) {
    server = s;  // accepted sockets are app-owned: keep it alive
    s->set_on_data([s](Buffer&& request) {
      std::printf("[backend]  got %zu bytes: \"%s\" -> replying\n", request.size(),
                  request.to_string().c_str());
      FF_CHECK(s->send(Buffer::from_string("hello from the backend")).is_ok());
    });
  }).is_ok());

  core::FlowSocketPtr client;
  frontend_net->sock_connect(backend->ip(), 8080, [&](Result<core::FlowSocketPtr> s) {
    FF_CHECK(s.is_ok());
    client = *s;
    std::printf("[frontend] connected via transport: %s\n",
                orch::transport_name(client->transport()).data());
    client->set_on_data([](Buffer&& reply) {
      std::printf("[frontend] reply: \"%s\"\n", reply.to_string().c_str());
    });
    FF_CHECK(client->send(Buffer::from_string("ping")).is_ok());
  });

  // 6. Run the virtual world.
  cluster.loop().run_for(1 * k_second);

  for (const auto& conn : frontend_net->connections()) {
    std::printf("[introspect] %s -> container %u via %s: %llu msgs out, %llu in\n",
                frontend->name().c_str(), conn.peer,
                orch::transport_name(conn.transport).data(),
                static_cast<unsigned long long>(conn.messages_sent),
                static_cast<unsigned long long>(conn.messages_received));
  }

  std::printf("\nThe orchestrator chose '%s' because both containers share a\n"
              "host; redeploy 'backend' on host 1 and the same code would run\n"
              "over RDMA. Virtual time elapsed: %s.\n",
              orch::transport_name(client->transport()).data(),
              format_ns(static_cast<double>(cluster.loop().now())).c_str());
  return 0;
}
