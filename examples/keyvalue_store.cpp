// A containerized key-value service (the latency-sensitive workload class
// from the paper's introduction): one server container, three client
// containers spread over two hosts. The same KvServer/KvClient code runs
// whether a client reaches the server over shared memory (co-located) or
// RDMA (remote) — FreeFlow decides per pair.
//
//   ./build/examples/keyvalue_store
#include <cstdio>

#include "core/freeflow.h"
#include "orchestrator/cluster_orchestrator.h"
#include "workloads/kv_store.h"

using namespace freeflow;
using workloads::FlowSocketStream;
using workloads::KvClient;
using workloads::KvServer;
using workloads::KvStatus;

namespace {
bool spin(fabric::Cluster& c, const std::function<bool()>& p, SimDuration budget) {
  const SimTime deadline = c.loop().now() + budget;
  for (;;) {
    if (p()) return true;
    if (c.loop().now() >= deadline || !c.loop().step()) return false;
  }
}
}  // namespace

int main() {
  fabric::Cluster cluster;
  cluster.add_hosts(2);
  overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
  overlay.attach_host(0);
  overlay.attach_host(1);
  orch::ClusterOrchestrator cluster_orch(cluster, overlay);
  orch::NetworkOrchestrator net_orch(cluster_orch);
  core::FreeFlow freeflow(net_orch);

  auto deploy = [&](const std::string& name, fabric::HostId host) {
    orch::ContainerSpec spec;
    spec.name = name;
    spec.tenant = 1;
    spec.pinned_host = host;
    return cluster_orch.deploy(spec).value();
  };
  auto server_c = deploy("kv-server", 0);
  auto local_client_c = deploy("client-local", 0);    // co-located -> shm
  auto remote1_c = deploy("client-remote-1", 1);      // remote     -> rdma
  auto remote2_c = deploy("client-remote-2", 1);

  auto server_net = freeflow.attach(server_c->id()).value();
  KvServer kv;
  FF_CHECK(server_net->sock_listen(6379, [&kv](core::FlowSocketPtr s) {
    kv.serve(std::make_shared<FlowSocketStream>(s));
  }).is_ok());

  struct ClientRig {
    std::shared_ptr<KvClient> client;
    core::FlowSocketPtr sock;
    std::string name;
  };
  std::vector<ClientRig> clients;
  for (auto& c : {local_client_c, remote1_c, remote2_c}) {
    auto net = freeflow.attach(c->id()).value();
    auto rig = std::make_shared<ClientRig>();
    rig->name = c->name();
    net->sock_connect(server_c->ip(), 6379, [&, rig](Result<core::FlowSocketPtr> s) {
      FF_CHECK(s.is_ok());
      rig->sock = *s;
      rig->client = std::make_shared<KvClient>(std::make_shared<FlowSocketStream>(*s));
      rig->client->set_clock([&cluster]() { return cluster.loop().now(); });
    });
    FF_CHECK(spin(cluster, [&]() { return rig->client != nullptr; }, 5 * k_second));
    std::printf("%-16s connected via %s\n", rig->name.c_str(),
                orch::transport_name(rig->sock->transport()).data());
    clients.push_back(*rig);
  }

  // Each client writes its own keyspace, then everyone cross-reads.
  int outstanding = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    for (int k = 0; k < 50; ++k) {
      ++outstanding;
      Buffer value(256);
      fill_pattern(value.mutable_view(), i * 1000 + static_cast<std::uint64_t>(k));
      clients[i].client->put("c" + std::to_string(i) + "/k" + std::to_string(k),
                             std::move(value), [&](KvStatus) { --outstanding; });
    }
  }
  FF_CHECK(spin(cluster, [&]() { return outstanding == 0; }, 30 * k_second));
  std::printf("loaded 150 keys\n");

  int mismatches = 0;
  for (std::size_t reader = 0; reader < clients.size(); ++reader) {
    for (std::size_t owner = 0; owner < clients.size(); ++owner) {
      for (int k = 0; k < 50; k += 7) {
        ++outstanding;
        const auto seed = owner * 1000 + static_cast<std::uint64_t>(k);
        clients[reader].client->get(
            "c" + std::to_string(owner) + "/k" + std::to_string(k),
            [&, seed](KvStatus st, Buffer&& v) {
              if (st != KvStatus::ok || !check_pattern(v.view(), seed)) ++mismatches;
              --outstanding;
            });
      }
    }
  }
  FF_CHECK(spin(cluster, [&]() { return outstanding == 0; }, 30 * k_second));
  std::printf("cross-read complete, mismatches: %d\n", mismatches);

  for (auto& rig : clients) {
    std::printf("%-16s %llu ops, median latency %s (%s)\n", rig.name.c_str(),
                static_cast<unsigned long long>(rig.client->completed()),
                format_ns(static_cast<double>(rig.client->latency().p50())).c_str(),
                orch::transport_name(rig.sock->transport()).data());
  }
  std::printf("\nnote how the co-located client's latency beats the remote ones:\n"
              "same application code, different data plane per pair.\n");
  return mismatches == 0 ? 0 : 1;
}
