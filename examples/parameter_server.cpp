// Distributed ML training with a parameter server (the paper's "machine
// learning" motivation), written directly against FreeFlow's verbs API:
// workers push gradients with one-sided WRITE and pull the model with READ
// — no server CPU in the data path, whatever transport backs each worker.
//
//   ./build/examples/parameter_server
#include <cstdio>

#include "common/histogram.h"
#include "core/freeflow.h"
#include "orchestrator/cluster_orchestrator.h"
#include "workloads/param_server.h"

using namespace freeflow;
using workloads::ParamServer;
using workloads::PsWorker;

namespace {
bool spin(fabric::Cluster& c, const std::function<bool()>& p, SimDuration budget) {
  const SimTime deadline = c.loop().now() + budget;
  for (;;) {
    if (p()) return true;
    if (c.loop().now() >= deadline || !c.loop().step()) return false;
  }
}
}  // namespace

int main() {
  fabric::Cluster cluster;
  cluster.add_hosts(3);
  overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
  for (fabric::HostId h = 0; h < 3; ++h) overlay.attach_host(h);
  orch::ClusterOrchestrator cluster_orch(cluster, overlay);
  orch::NetworkOrchestrator net_orch(cluster_orch);
  core::FreeFlow freeflow(net_orch);

  auto deploy = [&](const std::string& name, fabric::HostId host) {
    orch::ContainerSpec spec;
    spec.name = name;
    spec.tenant = 1;
    spec.pinned_host = host;
    return cluster_orch.deploy(spec).value();
  };

  ParamServer::Config cfg;
  cfg.model_floats = 512 * 1024;  // 2 MiB model
  cfg.iterations = 5;

  auto server_c = deploy("ps-server", 0);
  auto server_net = freeflow.attach(server_c->id()).value();
  ParamServer server(server_net, cfg);
  FF_CHECK(server.start().is_ok());
  std::printf("parameter server up: model = %zu floats (%zu KiB), MR id %u\n",
              cfg.model_floats, cfg.model_floats * sizeof(float) / 1024,
              server.model_mr_id());

  // One worker co-located with the server, two on other hosts.
  struct Rig {
    std::unique_ptr<PsWorker> worker;
    SimDuration elapsed = 0;
    std::string name;
  };
  std::vector<std::shared_ptr<Rig>> rigs;
  int h = 0;
  for (const char* name : {"worker-local", "worker-far-1", "worker-far-2"}) {
    auto c = deploy(name, static_cast<fabric::HostId>(h == 0 ? 0 : h));
    ++h;
    auto net = freeflow.attach(c->id()).value();
    auto rig = std::make_shared<Rig>();
    rig->name = name;
    rig->worker = std::make_unique<PsWorker>(net, server_c->ip(), cfg);
    rig->worker->run(server.model_mr_id(), [rig](Result<SimDuration> e) {
      FF_CHECK(e.is_ok());
      rig->elapsed = *e;
    });
    rigs.push_back(std::move(rig));
  }

  FF_CHECK(spin(cluster, [&]() {
    for (const auto& r : rigs) {
      if (r->elapsed == 0) return false;
    }
    return true;
  }, 600 * k_second));

  const double bytes_per_iter = 2.0 * static_cast<double>(cfg.model_floats) *
                                sizeof(float);  // push + pull
  std::printf("\n%-14s %-10s %14s %16s\n", "worker", "transport", "per-iteration",
              "effective rate");
  for (const auto& r : rigs) {
    const double per_iter = static_cast<double>(r->elapsed) / cfg.iterations;
    std::printf("%-14s %-10s %14s %12.1f Gb/s\n", r->name.c_str(),
                orch::transport_name(r->worker->transport()).data(),
                format_ns(per_iter).c_str(), bytes_per_iter * 8.0 / per_iter);
  }
  std::printf("\nthe co-located worker iterates fastest (shm); far workers ride\n"
              "RDMA; the server posted nothing after setup (one-sided verbs).\n");
  return 0;
}
