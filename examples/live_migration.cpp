// Live migration (paper §7): a long-lived connection keeps flowing while
// the orchestrator moves one container between hosts — twice. The overlay
// IP never changes; the conduit re-binds to whatever data plane is now
// optimal (rdma <-> shm).
//
//   ./build/examples/live_migration
#include <cstdio>

#include "core/freeflow.h"
#include "orchestrator/cluster_orchestrator.h"

using namespace freeflow;

namespace {
bool spin(fabric::Cluster& c, const std::function<bool()>& p, SimDuration budget) {
  const SimTime deadline = c.loop().now() + budget;
  for (;;) {
    if (p()) return true;
    if (c.loop().now() >= deadline || !c.loop().step()) return false;
  }
}
}  // namespace

int main() {
  fabric::Cluster cluster;
  cluster.add_hosts(2);
  overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
  overlay.attach_host(0);
  overlay.attach_host(1);
  orch::ClusterOrchestrator cluster_orch(cluster, overlay);
  orch::NetworkOrchestrator net_orch(cluster_orch);
  core::FreeFlow freeflow(net_orch);

  orch::ContainerSpec spec;
  spec.name = "producer";
  spec.tenant = 1;
  spec.pinned_host = 0u;
  auto producer = cluster_orch.deploy(spec).value();
  spec.name = "consumer";
  spec.pinned_host = 1u;
  auto consumer = cluster_orch.deploy(spec).value();

  auto producer_net = freeflow.attach(producer->id()).value();
  auto consumer_net = freeflow.attach(consumer->id()).value();

  core::FlowSocketPtr rx, tx;
  std::uint64_t received = 0, integrity_errors = 0;
  std::uint64_t expected_seed = 0;
  FF_CHECK(consumer_net->sock_listen(9000, [&](core::FlowSocketPtr s) {
    rx = s;
    s->set_on_data([&](Buffer&& chunk) {
      // 64 KiB chunks, each patterned with its sequence number.
      if (!check_pattern(chunk.view(), expected_seed)) ++integrity_errors;
      ++expected_seed;
      received += chunk.size();
    });
  }).is_ok());
  producer_net->sock_connect(consumer->ip(), 9000, [&](Result<core::FlowSocketPtr> s) {
    FF_CHECK(s.is_ok());
    tx = *s;
  });
  FF_CHECK(spin(cluster, [&]() { return tx && rx; }, 5 * k_second));

  std::uint64_t sent_seed = 0;
  auto send_burst = [&](int chunks) {
    for (int i = 0; i < chunks; ++i) {
      Buffer chunk(64 * 1024);
      fill_pattern(chunk.mutable_view(), sent_seed++);
      FF_CHECK(tx->send(std::move(chunk)).is_ok());
    }
  };
  auto drain = [&]() {
    FF_CHECK(spin(cluster, [&]() { return expected_seed == sent_seed; }, 60 * k_second));
  };
  auto report = [&](const char* phase) {
    std::printf("%-28s transport=%-5s  received=%6llu KiB  integrity_errors=%llu\n",
                phase, orch::transport_name(tx->transport()).data(),
                static_cast<unsigned long long>(received / 1024),
                static_cast<unsigned long long>(integrity_errors));
  };

  send_burst(256);
  drain();
  report("phase 1: apart (host0/host1)");

  // Migrate the consumer next to the producer. The stream is quiesced
  // (bursts are drained) so no in-flight data straddles the blackout.
  FF_CHECK(cluster_orch.migrate(consumer->id(), 0).is_ok());
  FF_CHECK(spin(cluster, [&]() {
    return consumer->host() == 0 && tx->transport() == orch::Transport::shm;
  }, 10 * k_second));
  send_burst(256);
  drain();
  report("phase 2: co-located (host0)");

  // And move it back: shm -> rdma again.
  FF_CHECK(cluster_orch.migrate(consumer->id(), 1).is_ok());
  FF_CHECK(spin(cluster, [&]() {
    return consumer->host() == 1 && tx->transport() == orch::Transport::rdma;
  }, 10 * k_second));
  send_burst(256);
  drain();
  report("phase 3: apart again");

  std::printf("\nconduit re-binds: %llu; overlay IP stayed %s throughout.\n",
              static_cast<unsigned long long>(tx->conduit()->rebinds()),
              consumer->ip().to_string().c_str());
  return integrity_errors == 0 ? 0 : 1;
}
