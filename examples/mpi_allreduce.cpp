// Data-parallel training with MPI collectives over FreeFlow (paper §6:
// "the same concepts are applicable for MPI run-time libraries... by
// layering the MPI implementation on top of FreeFlow"). Four ranks spread
// over two hosts run synchronous SGD steps: local gradient computation,
// allreduce to average, barrier between epochs.
//
//   ./build/examples/mpi_allreduce
#include <cmath>
#include <cstdio>

#include "common/histogram.h"
#include "core/freeflow.h"
#include "core/mpi.h"
#include "orchestrator/cluster_orchestrator.h"

using namespace freeflow;

namespace {
bool spin(fabric::Cluster& c, const std::function<bool()>& p, SimDuration budget) {
  const SimTime deadline = c.loop().now() + budget;
  for (;;) {
    if (p()) return true;
    if (c.loop().now() >= deadline || !c.loop().step()) return false;
  }
}
}  // namespace

int main() {
  constexpr int k_ranks = 4;
  constexpr int k_epochs = 3;
  constexpr std::size_t k_params = 64 * 1024;  // 512 KiB of doubles

  fabric::Cluster cluster;
  cluster.add_hosts(2);
  overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
  overlay.attach_host(0);
  overlay.attach_host(1);
  orch::ClusterOrchestrator cluster_orch(cluster, overlay);
  orch::NetworkOrchestrator net_orch(cluster_orch);
  core::FreeFlow freeflow(net_orch);

  std::vector<orch::ContainerPtr> containers;
  std::vector<core::ContainerNetPtr> nets;
  std::vector<tcp::Ipv4Addr> ips;
  for (int r = 0; r < k_ranks; ++r) {
    orch::ContainerSpec spec;
    spec.name = "rank" + std::to_string(r);
    spec.tenant = 1;
    spec.pinned_host = static_cast<fabric::HostId>(r % 2);
    containers.push_back(cluster_orch.deploy(spec).value());
    nets.push_back(freeflow.attach(containers.back()->id()).value());
    ips.push_back(containers.back()->ip());
  }
  std::vector<core::MpiEndpointPtr> ranks;
  for (int r = 0; r < k_ranks; ++r) {
    ranks.push_back(std::make_shared<core::MpiEndpoint>(nets[static_cast<std::size_t>(r)],
                                                        r, ips));
    FF_CHECK(ranks.back()->start().is_ok());
  }
  std::printf("MPI world: %d ranks on 2 hosts (intra-host pairs ride shm,\n"
              "cross-host pairs ride RDMA — the MPI layer never knows)\n\n",
              k_ranks);

  // Synchronous SGD: each rank contributes rank-dependent "gradients"; the
  // allreduce result must equal the sum on every rank, every epoch.
  for (int epoch = 0; epoch < k_epochs; ++epoch) {
    const SimTime t0 = cluster.loop().now();
    int done = 0;
    double checksum = 0;
    for (int r = 0; r < k_ranks; ++r) {
      std::vector<double> grad(k_params);
      for (std::size_t i = 0; i < k_params; ++i) {
        grad[i] = static_cast<double>(r + 1) * 0.001;
      }
      ranks[static_cast<std::size_t>(r)]->allreduce_sum(
          std::move(grad), [&, r](std::vector<double> sum) {
            if (r == 0) checksum = sum[0];
            ++done;
          });
    }
    FF_CHECK(spin(cluster, [&]() { return done == k_ranks; }, 300 * k_second));

    // Expected: sum over ranks of (r+1)*0.001 = (1+2+3+4)*0.001.
    const double expected = 10.0 * 0.001;
    FF_CHECK(std::abs(checksum - expected) < 1e-12);

    int through = 0;
    for (auto& ep : ranks) ep->barrier([&]() { ++through; });
    FF_CHECK(spin(cluster, [&]() { return through == k_ranks; }, 300 * k_second));

    std::printf("epoch %d: allreduce(%zu params) + barrier in %s (checksum ok)\n",
                epoch, k_params,
                format_ns(static_cast<double>(cluster.loop().now() - t0)).c_str());
  }

  // Show the transports the MPI layer ended up on.
  std::printf("\nrank 0's connections:\n");
  for (const auto& conn : nets[0]->connections()) {
    std::printf("  -> %-12s via %s\n", conn.peer_ip.to_string().c_str(),
                orch::transport_name(conn.transport).data());
  }
  std::printf("\nMPI programs port to FreeFlow with zero changes: collectives\n"
              "decompose to point-to-point sends that each take the best path.\n");
  return 0;
}
