// The shuffle phase of a MapReduce job (the paper's "big data analytics"
// motivation): 3 mappers stream partitions to 3 reducers across a 4-host
// cluster, once over the overlay baseline and once over FreeFlow, printing
// the completion-time gap.
//
//   ./build/examples/mapreduce_shuffle
#include <cstdio>

#include "common/histogram.h"
#include "core/freeflow.h"
#include "orchestrator/cluster_orchestrator.h"
#include "workloads/shuffle.h"
#include "workloads/stream_adapter.h"

using namespace freeflow;
using workloads::FlowSocketStream;
using workloads::Shuffle;
using workloads::StreamPtr;
using workloads::TcpStream;

namespace {
bool spin(fabric::Cluster& c, const std::function<bool()>& p, SimDuration budget) {
  const SimTime deadline = c.loop().now() + budget;
  for (;;) {
    if (p()) return true;
    if (c.loop().now() >= deadline || !c.loop().step()) return false;
  }
}

Shuffle::Config make_config() {
  Shuffle::Config cfg;
  cfg.mappers = 3;
  cfg.reducers = 3;
  cfg.bytes_per_flow = 16 * 1024 * 1024;
  return cfg;
}
}  // namespace

int main() {
  const Shuffle::Config cfg = make_config();
  std::printf("shuffle: %d mappers x %d reducers, %llu MiB per flow (%llu MiB total)\n",
              cfg.mappers, cfg.reducers,
              static_cast<unsigned long long>(cfg.bytes_per_flow >> 20),
              static_cast<unsigned long long>(
                  (cfg.bytes_per_flow * static_cast<std::uint64_t>(cfg.mappers) *
                   static_cast<std::uint64_t>(cfg.reducers)) >> 20));

  SimDuration overlay_time = 0;
  SimDuration freeflow_time = 0;

  // ---- Baseline: docker-overlay-style networking ------------------------
  {
    fabric::Cluster cluster;
    cluster.add_hosts(4);
    overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
    for (fabric::HostId h = 0; h < 4; ++h) overlay.attach_host(h);

    std::vector<tcp::Ipv4Addr> mappers, reducers;
    for (int i = 0; i < cfg.mappers; ++i) {
      mappers.push_back(*overlay.add_container(static_cast<fabric::HostId>(i % 4), nullptr));
    }
    for (int i = 0; i < cfg.reducers; ++i) {
      reducers.push_back(
          *overlay.add_container(static_cast<fabric::HostId>((i + 2) % 4), nullptr));
    }
    cluster.loop().run();  // converge routes

    tcp::TcpNetwork net(cluster.loop(), cluster.cost_model(), overlay.path_builder());
    Shuffle shuffle(cfg, [&](int m, int r, std::function<void(Result<StreamPtr>)> cb) {
      net.connect({mappers[static_cast<std::size_t>(m)], 0},
                  {reducers[static_cast<std::size_t>(r)], 8000},
                  [cb = std::move(cb)](Result<tcp::TcpConnection::Ptr> c) {
                    if (!c.is_ok()) return cb(c.status());
                    cb(StreamPtr(std::make_shared<TcpStream>(*c)));
                  });
    });
    auto sink = shuffle.reducer_sink();
    for (auto r : reducers) {
      FF_CHECK(net.listen({r, 8000}, [sink](tcp::TcpConnection::Ptr c) {
        sink(std::make_shared<TcpStream>(c));
      }).is_ok());
    }
    shuffle.run([&]() { return cluster.loop().now(); },
                [&](Result<SimDuration> e) {
                  FF_CHECK(e.is_ok());
                  overlay_time = *e;
                });
    FF_CHECK(spin(cluster, [&]() { return overlay_time != 0; }, 600 * k_second));
  }

  // ---- FreeFlow ----------------------------------------------------------
  {
    fabric::Cluster cluster;
    cluster.add_hosts(4);
    overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
    for (fabric::HostId h = 0; h < 4; ++h) overlay.attach_host(h);
    orch::ClusterOrchestrator cluster_orch(cluster, overlay);
    orch::NetworkOrchestrator net_orch(cluster_orch);
    core::FreeFlow freeflow(net_orch);

    auto deploy = [&](const std::string& name, fabric::HostId host) {
      orch::ContainerSpec spec;
      spec.name = name;
      spec.tenant = 1;
      spec.pinned_host = host;
      return cluster_orch.deploy(spec).value();
    };
    std::vector<orch::ContainerPtr> ms, rs;
    std::vector<core::ContainerNetPtr> mnets, rnets;
    for (int i = 0; i < cfg.mappers; ++i) {
      ms.push_back(deploy("map" + std::to_string(i), static_cast<fabric::HostId>(i % 4)));
      mnets.push_back(freeflow.attach(ms.back()->id()).value());
    }
    for (int i = 0; i < cfg.reducers; ++i) {
      rs.push_back(
          deploy("red" + std::to_string(i), static_cast<fabric::HostId>((i + 2) % 4)));
      rnets.push_back(freeflow.attach(rs.back()->id()).value());
    }

    Shuffle shuffle(cfg, [&](int m, int r, std::function<void(Result<StreamPtr>)> cb) {
      mnets[static_cast<std::size_t>(m)]->sock_connect(
          rs[static_cast<std::size_t>(r)]->ip(), 8000,
          [cb = std::move(cb)](Result<core::FlowSocketPtr> s) {
            if (!s.is_ok()) return cb(s.status());
            cb(StreamPtr(std::make_shared<FlowSocketStream>(*s)));
          });
    });
    auto sink = shuffle.reducer_sink();
    for (auto& rn : rnets) {
      FF_CHECK(rn->sock_listen(8000, [sink](core::FlowSocketPtr s) {
        sink(std::make_shared<FlowSocketStream>(s));
      }).is_ok());
    }
    shuffle.run([&]() { return cluster.loop().now(); },
                [&](Result<SimDuration> e) {
                  FF_CHECK(e.is_ok());
                  freeflow_time = *e;
                });
    FF_CHECK(spin(cluster, [&]() { return freeflow_time != 0; }, 600 * k_second));
  }

  std::printf("\n%-18s %12s\n", "network", "completion");
  std::printf("%-18s %12s\n", "overlay",
              format_ns(static_cast<double>(overlay_time)).c_str());
  std::printf("%-18s %12s   (%.2fx faster)\n", "FreeFlow",
              format_ns(static_cast<double>(freeflow_time)).c_str(),
              static_cast<double>(overlay_time) / static_cast<double>(freeflow_time));
  std::printf("\nmapper->reducer flows that land on a shared host ride shared\n"
              "memory; cross-host flows ride RDMA — no shuffle code changed.\n");
  return 0;
}
